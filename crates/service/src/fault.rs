//! Deterministic, seeded fault injection for the whole service stack.
//!
//! A [`FaultPlan`] is compiled from a seed and a [`FaultSchedule`] (per-site
//! firing rates).  Every injection point in the stack asks the plan whether
//! its *n*-th consultation fires; the answer is a pure function of
//! `(seed, site, n)` — no wall clock, no global RNG — so the same seed
//! replays the identical fault schedule, byte for byte.  The only mutable
//! state is a per-site consultation counter, which exists so concurrent
//! callers each consume a distinct index; the *decisions* those indices map
//! to are fixed the moment the plan is built, and
//! [`schedule_hash`](FaultPlan::schedule_hash) digests them without running
//! anything.
//!
//! Injection sites and where they are consulted:
//!
//! | site                                | consulted by                                   |
//! |-------------------------------------|------------------------------------------------|
//! | [`FaultSite::ShortRead`]            | reactor `pump_read`, `FaultyStream::read`      |
//! | [`FaultSite::ShortWrite`]           | reactor `pump_write`, `FaultyStream::write`    |
//! | [`FaultSite::EagainStorm`]          | reactor read path (level-triggered re-fires)   |
//! | [`FaultSite::SpuriousWakeup`]       | `epoll::Epoll::wait` via the [`WaitFault`] hook |
//! | [`FaultSite::ConnReset`]            | reactor + `FaultyStream` read/write paths      |
//! | [`FaultSite::ClockSkew`]            | `Client::submit_with_deadline` deadline math   |
//! | [`FaultSite::WorkerPanic`]          | executor, per price request                    |
//! | [`FaultSite::WorkerStall`]          | executor, per drained batch                    |
//! | [`FaultSite::WorkerDeath`]          | top of `worker_loop` (between batches)         |
//! | [`FaultSite::LostReply`]            | nowhere by design — see below                  |
//!
//! [`FaultSite::LostReply`] is the *deliberately unhandled* class: when its
//! rate is non-zero the executor drops the batch entries it drained instead
//! of filling their slots, violating the exactly-one-reply invariant on
//! purpose.  CI uses it to prove the chaos gate can fail; every production
//! schedule keeps its rate at zero.
//!
//! [`WaitFault`]: epoll::WaitFault

use crate::obs::ServiceObs;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Number of distinct injection sites.
pub const SITE_COUNT: usize = 10;

/// Decisions hashed per site by [`FaultPlan::schedule_hash`].  Large enough
/// that any realistic run stays inside the digested horizon while keeping
/// hashing instant.
const SCHEDULE_HASH_HORIZON: u64 = 4096;

/// One class of injected fault.  Discriminants index the per-site tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Truncate a socket read to a few bytes.
    ShortRead = 0,
    /// Truncate a socket write to a few bytes.
    ShortWrite = 1,
    /// Report `EAGAIN` from a read that would have produced data.
    EagainStorm = 2,
    /// Wake `Epoll::wait` with zero events.
    SpuriousWakeup = 3,
    /// Kill the connection mid-line (reset/EOF from the peer's view).
    ConnReset = 4,
    /// Skew a submission's computed deadline by a bounded ± offset.
    ClockSkew = 5,
    /// Panic while pricing one request.
    WorkerPanic = 6,
    /// Stall a worker for a bounded duration before running a batch.
    WorkerStall = 7,
    /// Kill a worker thread between batches (the watchdog respawns it).
    WorkerDeath = 8,
    /// Drop drained batch entries without replying — the deliberately
    /// unhandled class that must make the chaos gate fail.
    LostReply = 9,
}

/// Every site, in discriminant order.
pub const FAULT_SITES: [FaultSite; SITE_COUNT] = [
    FaultSite::ShortRead,
    FaultSite::ShortWrite,
    FaultSite::EagainStorm,
    FaultSite::SpuriousWakeup,
    FaultSite::ConnReset,
    FaultSite::ClockSkew,
    FaultSite::WorkerPanic,
    FaultSite::WorkerStall,
    FaultSite::WorkerDeath,
    FaultSite::LostReply,
];

impl FaultSite {
    /// Stable display name (used in reports and the chaos summary).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ShortRead => "short-read",
            FaultSite::ShortWrite => "short-write",
            FaultSite::EagainStorm => "eagain-storm",
            FaultSite::SpuriousWakeup => "spurious-wakeup",
            FaultSite::ConnReset => "conn-reset",
            FaultSite::ClockSkew => "clock-skew",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::WorkerStall => "worker-stall",
            FaultSite::WorkerDeath => "worker-death",
            FaultSite::LostReply => "lost-reply",
        }
    }

    /// Whether this site models transport-level I/O.
    pub fn is_io(self) -> bool {
        matches!(
            self,
            FaultSite::ShortRead
                | FaultSite::ShortWrite
                | FaultSite::EagainStorm
                | FaultSite::SpuriousWakeup
                | FaultSite::ConnReset
        )
    }
}

/// Per-site firing rates, in parts per 1024 consultations.
///
/// A rate of `0` disables the site; `1024` fires on every consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Firing rate of each site, indexed by [`FaultSite`] discriminant.
    pub rates: [u16; SITE_COUNT],
    /// Clock-skew magnitude bound, milliseconds (applied as ±).
    pub max_skew_ms: u64,
    /// Worker-stall duration bound, milliseconds.
    pub max_stall_ms: u64,
    /// Short read/write length bound, bytes (min 1).
    pub max_short_len: usize,
}

impl FaultSchedule {
    /// The all-zero schedule: every site disabled.
    pub fn off() -> FaultSchedule {
        FaultSchedule { rates: [0; SITE_COUNT], max_skew_ms: 5, max_stall_ms: 2, max_short_len: 64 }
    }

    /// The hostile schedule the chaos soak runs: every handled class fires
    /// often enough that a mixed book sees hundreds of faults, while resets
    /// stay rare enough that retry budgets are not the bottleneck.
    pub fn hostile() -> FaultSchedule {
        FaultSchedule::off()
            .with_rate(FaultSite::ShortRead, 300)
            .with_rate(FaultSite::ShortWrite, 220)
            .with_rate(FaultSite::EagainStorm, 90)
            .with_rate(FaultSite::SpuriousWakeup, 160)
            .with_rate(FaultSite::ConnReset, 5)
            .with_rate(FaultSite::ClockSkew, 120)
            .with_rate(FaultSite::WorkerPanic, 24)
            .with_rate(FaultSite::WorkerStall, 200)
            .with_rate(FaultSite::WorkerDeath, 48)
    }

    /// Returns the schedule with `site`'s rate set to `per_1024`.
    pub fn with_rate(mut self, site: FaultSite, per_1024: u16) -> FaultSchedule {
        if let Some(slot) = self.rates.get_mut(site as usize) {
            *slot = per_1024.min(1024);
        }
        self
    }

    /// The rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> u16 {
        self.rates.get(site as usize).copied().unwrap_or(0)
    }
}

/// Fired-fault counts per site, snapshot via [`FaultPlan::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Faults fired, indexed by [`FaultSite`] discriminant.
    pub fired: [u64; SITE_COUNT],
}

impl FaultStats {
    /// Faults fired at `site`.
    pub fn fired_at(&self, site: FaultSite) -> u64 {
        self.fired.get(site as usize).copied().unwrap_or(0)
    }

    /// Total faults fired across all sites.
    pub fn total(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Total faults fired at transport-level I/O sites.
    pub fn io_total(&self) -> u64 {
        FAULT_SITES.iter().filter(|s| s.is_io()).map(|&s| self.fired_at(s)).sum()
    }

    /// `(site name, fired count)` for every site that fired at least once.
    pub fn non_zero(&self) -> Vec<(&'static str, u64)> {
        FAULT_SITES.iter().map(|&s| (s.name(), self.fired_at(s))).filter(|&(_, n)| n > 0).collect()
    }
}

/// A compiled fault plan: seed + schedule + per-site consultation counters.
///
/// Decisions are pure in `(seed, site, index)`; the counters only hand out
/// indices, so two plans with the same seed and schedule produce the same
/// decision sequence at every site regardless of thread interleaving
/// *within* a site's consultations.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    schedule: FaultSchedule,
    consulted: [AtomicU64; SITE_COUNT],
    fired: [AtomicU64; SITE_COUNT],
    /// Observability hook a service attaches at start: every firing is
    /// counted and journaled through it.  Empty until (unless) the plan
    /// serves a [`QuoteService`](crate::QuoteService); a plan driven
    /// standalone records nothing beyond its own `fired` counters.
    observer: OnceLock<Arc<ServiceObs>>,
}

/// SplitMix64: the standard 64-bit finalizer, bijective and well mixed.
/// Crate-visible so retry jitter can mix deterministically too.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The raw 64-bit draw behind the `index`-th consultation of `site`.
fn draw(seed: u64, site: FaultSite, index: u64) -> u64 {
    // Spread the site across high bits so small indices at different sites
    // never collide before mixing.
    splitmix64(seed ^ ((site as u64) << 56) ^ index)
}

/// Whether the `index`-th consultation of a site with `rate` fires.
fn decides(seed: u64, site: FaultSite, rate: u16, index: u64) -> bool {
    rate > 0 && (draw(seed, site, index) & 1023) < rate as u64
}

fn cell(cells: &[AtomicU64; SITE_COUNT], site: FaultSite) -> &AtomicU64 {
    static ZERO: AtomicU64 = AtomicU64::new(0);
    // The discriminant is always in range; the fallback cell exists only to
    // keep this total without indexing.
    cells.get(site as usize).unwrap_or(&ZERO)
}

impl FaultPlan {
    /// Compiles a plan from `seed` and `schedule`.
    pub fn new(seed: u64, schedule: FaultSchedule) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            seed,
            schedule,
            consulted: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            observer: OnceLock::new(),
        })
    }

    /// Attaches the service's observability hook (first caller wins).
    pub(crate) fn attach_observer(&self, obs: Arc<ServiceObs>) {
        let _ = self.observer.set(obs);
    }

    /// The hostile chaos schedule compiled for `seed`.
    pub fn hostile(seed: u64) -> Arc<FaultPlan> {
        FaultPlan::new(seed, FaultSchedule::hostile())
    }

    /// The seed this plan was compiled from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule this plan was compiled from.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Consumes one consultation of `site`; returns the firing's
    /// consultation index when it fires (for magnitude draws).
    fn fire_indexed(&self, site: FaultSite) -> Option<u64> {
        // amopt-lint: hot-path
        let index = cell(&self.consulted, site).fetch_add(1, Ordering::Relaxed);
        if decides(self.seed, site, self.schedule.rate(site), index) {
            cell(&self.fired, site).fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = self.observer.get() {
                obs.fault_fired(site, index);
            }
            Some(index)
        } else {
            None
        }
    }

    /// Consumes one consultation of `site`; `true` when it fires.
    pub fn fires(&self, site: FaultSite) -> bool {
        self.fire_indexed(site).is_some()
    }

    /// Clock skew to apply to a freshly computed deadline, if this
    /// consultation fires: a deterministic offset in
    /// `[-max_skew_ms, +max_skew_ms]` milliseconds.
    pub fn clock_skew_ms(&self) -> Option<i64> {
        let index = self.fire_indexed(FaultSite::ClockSkew)?;
        let bound = self.schedule.max_skew_ms.max(1) as i64;
        let magnitude = draw(self.seed, FaultSite::ClockSkew, !index);
        Some((magnitude % (2 * bound as u64 + 1)) as i64 - bound)
    }

    /// Stall duration for this batch, if this consultation fires.
    pub fn stall(&self) -> Option<Duration> {
        let index = self.fire_indexed(FaultSite::WorkerStall)?;
        let bound = self.schedule.max_stall_ms.max(1);
        let magnitude = draw(self.seed, FaultSite::WorkerStall, !index);
        Some(Duration::from_millis(1 + magnitude % bound))
    }

    /// Truncated transfer length for a short read/write that fired at
    /// consultation `index`, in `[1, max_short_len]`, capped by `full`.
    fn short_len(&self, site: FaultSite, index: u64, full: usize) -> usize {
        let bound = self.schedule.max_short_len.max(1) as u64;
        let len = 1 + draw(self.seed, site, !index) % bound;
        (len as usize).min(full.max(1))
    }

    /// Next fault to apply to a socket read that would transfer up to
    /// `full` bytes.  Consults reset → EAGAIN → short-read, in that fixed
    /// order, so the decision sequence is reproducible.
    pub fn read_fault(&self, full: usize) -> IoFault {
        if self.fires(FaultSite::ConnReset) {
            IoFault::Reset
        } else if self.fires(FaultSite::EagainStorm) {
            IoFault::Eagain
        } else if let Some(index) = self.fire_indexed(FaultSite::ShortRead) {
            IoFault::Short(self.short_len(FaultSite::ShortRead, index, full))
        } else {
            IoFault::None
        }
    }

    /// Next fault to apply to a socket write of up to `full` bytes.
    /// Consults reset → short-write (EAGAIN storms are a read-path,
    /// reactor-only class: a blocking writer has no storm to ride out).
    pub fn write_fault(&self, full: usize) -> IoFault {
        if self.fires(FaultSite::ConnReset) {
            IoFault::Reset
        } else if let Some(index) = self.fire_indexed(FaultSite::ShortWrite) {
            IoFault::Short(self.short_len(FaultSite::ShortWrite, index, full))
        } else {
            IoFault::None
        }
    }

    /// Digest of the complete decision schedule: every site's rate plus its
    /// first `SCHEDULE_HASH_HORIZON` (4096) decisions per site, folded
    /// through splitmix64.  Pure in `(seed, schedule)` — computing it neither
    /// consumes consultations nor depends on what already ran — so two runs
    /// with the same seed provably face the same fault schedule.
    pub fn schedule_hash(&self) -> u64 {
        let mut h = splitmix64(self.seed ^ 0x5eed_5c4e_d01e_0000);
        for &site in &FAULT_SITES {
            let rate = self.schedule.rate(site);
            h = splitmix64(h ^ ((site as u64) << 48) ^ ((rate as u64) << 16));
            let mut bits = 0u64;
            for index in 0..SCHEDULE_HASH_HORIZON {
                bits = (bits << 1) | u64::from(decides(self.seed, site, rate, index));
                if index % 64 == 63 {
                    h = splitmix64(h ^ bits);
                    bits = 0;
                }
            }
        }
        h
    }

    /// Snapshot of fired-fault counts.
    pub fn stats(&self) -> FaultStats {
        let mut stats = FaultStats::default();
        for (slot, counter) in stats.fired.iter_mut().zip(&self.fired) {
            *slot = counter.load(Ordering::Relaxed);
        }
        stats
    }
}

/// One transport-level fault decision, produced by
/// [`read_fault`](FaultPlan::read_fault) / [`write_fault`](FaultPlan::write_fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// No fault: perform the transfer untouched.
    None,
    /// Truncate the transfer to this many bytes.
    Short(usize),
    /// Report `WouldBlock` without transferring.
    Eagain,
    /// Report `ConnectionReset` and kill the transport.
    Reset,
}

/// Adapter installing a [`FaultPlan`] as the reactor's
/// [`epoll::WaitFault`] hook (the [`FaultSite::SpuriousWakeup`] site).
#[derive(Debug)]
pub struct SpuriousWakeups(pub Arc<FaultPlan>);

impl epoll::WaitFault for SpuriousWakeups {
    fn spurious_wakeup(&self) -> bool {
        self.0.fires(FaultSite::SpuriousWakeup)
    }
}

/// A `Read + Write` wrapper injecting short reads, short writes, and
/// connection resets into a blocking stream — the threaded front end's
/// transport-fault surface (the reactor injects at its own nonblocking
/// call sites instead).
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, consulting `plan` on every transfer.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> FaultyStream<S> {
        FaultyStream { inner, plan, dead: false }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn reset_err(&mut self) -> io::Error {
        self.dead = true;
        io::Error::new(io::ErrorKind::ConnectionReset, "amopt-fault: injected connection reset")
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "amopt-fault: stream dead"));
        }
        match self.plan.read_fault(buf.len()) {
            IoFault::Reset => Err(self.reset_err()),
            // A blocking stream has no EAGAIN to surface; deliver the data.
            IoFault::None | IoFault::Eagain => self.inner.read(buf),
            IoFault::Short(n) => {
                let cap = n.min(buf.len()).max(1);
                match buf.get_mut(..cap) {
                    Some(window) => self.inner.read(window),
                    None => self.inner.read(buf),
                }
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "amopt-fault: stream dead"));
        }
        match self.plan.write_fault(buf.len()) {
            IoFault::Reset => Err(self.reset_err()),
            IoFault::None | IoFault::Eagain => self.inner.write(buf),
            IoFault::Short(n) => {
                let cap = n.min(buf.len()).max(1);
                self.inner.write(buf.get(..cap).unwrap_or(buf))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions_different_seed_different_hash() {
        let a = FaultPlan::hostile(42);
        let b = FaultPlan::hostile(42);
        let c = FaultPlan::hostile(43);
        assert_eq!(a.schedule_hash(), b.schedule_hash());
        assert_ne!(a.schedule_hash(), c.schedule_hash());
        // Consuming consultations does not perturb the schedule hash.
        for _ in 0..100 {
            let _ = a.fires(FaultSite::ShortRead);
            let _ = a.read_fault(4096);
        }
        assert_eq!(a.schedule_hash(), b.schedule_hash());
        // And the consumed decision sequence replays identically.
        let seq_a: Vec<bool> = (0..100).map(|_| b.fires(FaultSite::WorkerPanic)).collect();
        let d = FaultPlan::hostile(42);
        let seq_b: Vec<bool> = (0..100).map(|_| d.fires(FaultSite::WorkerPanic)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn rates_are_roughly_honoured_and_zero_rate_never_fires() {
        let plan = FaultPlan::new(7, FaultSchedule::off().with_rate(FaultSite::WorkerPanic, 512));
        let fired = (0..4096).filter(|_| plan.fires(FaultSite::WorkerPanic)).count();
        // 512/1024 = one half; allow a generous band.
        assert!((1500..2600).contains(&fired), "fired {fired} of 4096 at rate 512/1024");
        assert_eq!((0..4096).filter(|_| plan.fires(FaultSite::ConnReset)).count(), 0);
        assert_eq!(plan.stats().fired_at(FaultSite::ConnReset), 0);
        assert_eq!(plan.stats().fired_at(FaultSite::WorkerPanic), fired as u64);
    }

    #[test]
    fn schedule_hash_depends_on_rates_not_just_seed() {
        let a = FaultPlan::new(9, FaultSchedule::hostile());
        let b = FaultPlan::new(9, FaultSchedule::hostile().with_rate(FaultSite::LostReply, 64));
        assert_ne!(a.schedule_hash(), b.schedule_hash());
    }

    #[test]
    fn magnitudes_stay_in_bounds() {
        let schedule = FaultSchedule {
            rates: [1024; SITE_COUNT],
            max_skew_ms: 7,
            max_stall_ms: 3,
            max_short_len: 16,
        };
        let plan = FaultPlan::new(11, schedule);
        for _ in 0..500 {
            if let Some(skew) = plan.clock_skew_ms() {
                assert!((-7..=7).contains(&skew), "skew {skew} out of bounds");
            }
            if let Some(stall) = plan.stall() {
                assert!(stall <= Duration::from_millis(3), "stall {stall:?} out of bounds");
            }
            match plan.read_fault(1 << 20) {
                IoFault::Short(n) => assert!((1..=16).contains(&n)),
                IoFault::Reset | IoFault::Eagain | IoFault::None => {}
            }
        }
    }

    #[test]
    fn faulty_stream_short_reads_still_deliver_every_byte() {
        use std::io::Read as _;
        let payload: Vec<u8> = (0u16..2048).map(|i| (i % 251) as u8).collect();
        let schedule = FaultSchedule::off()
            .with_rate(FaultSite::ShortRead, 700)
            .with_rate(FaultSite::ShortWrite, 700);
        let plan = FaultPlan::new(3, schedule);
        let mut stream = FaultyStream::new(std::io::Cursor::new(payload.clone()), plan);
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("short reads are not errors");
        assert_eq!(out, payload);
    }

    #[test]
    fn faulty_stream_reset_is_terminal() {
        use std::io::Write as _;
        let plan = FaultPlan::new(5, FaultSchedule::off().with_rate(FaultSite::ConnReset, 1024));
        let mut stream = FaultyStream::new(Vec::<u8>::new(), plan);
        let err = stream.write(b"hello").expect_err("reset must fire at rate 1024");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = stream.write(b"again").expect_err("stream stays dead");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
