//! Single-threaded epoll reactor front end.
//!
//! One thread owns every connection: a level-triggered [`epoll::Epoll`]
//! multiplexes the nonblocking listener, an [`epoll::Waker`] eventfd, and
//! every accepted socket.  Connections carry incremental read/write
//! buffers with partial-line and partial-write resumption, so a slow peer
//! costs a few kilobytes of buffer instead of two parked OS threads — the
//! reactor holds thousands of idle connections where the threaded front
//! end capped out at tens.
//!
//! ## Event-loop states (per connection)
//!
//! * **Open** — reading lines, submitting to the EDF queue, writing
//!   replies in request order.  Reads pause (interest drops to
//!   [`Interest::NONE`]) while the reply pipeline is at the connection's
//!   in-flight cap; writes subscribe to `EPOLLOUT` only while a reply is
//!   partially written.  Lines already buffered past the cap are
//!   re-parsed as replies drain — a deliberate divergence from the
//!   threaded front end, which answers over-cap submissions with
//!   `overloaded` errors; the reactor backpressures instead and never
//!   rejects on the per-connection cap (see
//!   [`QuoteServer`](crate::QuoteServer)).
//! * **Peer-closed** — the peer half-closed (EOF / `EPOLLRDHUP`).  The
//!   connection stays registered until every accepted request has been
//!   answered and flushed, then closes.
//! * **Draining** — a line was rejected (over [`wire::MAX_LINE_BYTES`] or
//!   not UTF-8): the error reply is flushed, the write side shuts down,
//!   and leftover input is swallowed — bounded in bytes and time — so the
//!   reply survives instead of being discarded by a TCP reset.
//!
//! Completions re-enter the loop through a ready-list + eventfd pair: the
//! worker that fills a slot pushes the connection's token onto the ready
//! list (outside every lock) and writes the eventfd, and the reactor pumps
//! those connections on its next iteration.  Replies always leave in
//! request order; a ticket that is not yet resolvable parks the pipeline
//! for that connection only.
//!
//! The `unsafe` syscall surface lives entirely in the `epoll` shim crate;
//! this module is ordinary safe Rust under the workspace-wide
//! `#![forbid(unsafe_code)]` and amopt-lint's `unsafe-confined` pass.

use crate::fault::{FaultPlan, IoFault, SpuriousWakeups};
use crate::obs::ServiceObs;
use crate::queue::{Client, QuoteService, Ticket};
use crate::sync::lock_unpoisoned;
use crate::wire::{self, LineAssembler, WireRequest};
use amopt_obs::Stage;
use epoll::{Epoll, Events, Interest, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Registration token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Registration token of the completion eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token available to connections (slab slot + this offset).
const TOKEN_CONN_BASE: u64 = 2;

/// Events pulled per `epoll_wait` call.
const EVENT_CAPACITY: usize = 1024;
/// Read chunk size; also the per-read growth step of a connection buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Byte budget for swallowing leftover input after a rejected line
/// (mirrors the threaded front end's drain).
const DRAIN_BUDGET: usize = 64 << 20;
/// Wall-clock budget for that drain.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// How long shutdown waits for unflushed replies before closing anyway.
const EXIT_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// State shared between the reactor thread, completion callbacks, and the
/// owning [`QuoteServer`](crate::QuoteServer).  The reactor's counters
/// live on the service's [`ServiceObs`] registry, not here, so the wire
/// `stats` op and the `metrics` exposition read the same instruments.
#[derive(Debug)]
struct ReactorShared {
    waker: Waker,
    /// Stop accepting new connections (established ones keep serving).
    stop_accepting: AtomicBool,
    /// Flush whatever is answerable, close everything, and exit the loop.
    exit: AtomicBool,
    /// Tokens of connections with newly-resolved tickets.  Pushed by the
    /// worker completion callback (outside every queue lock), drained by
    /// the reactor each iteration.  Stale tokens — the connection closed
    /// first, or the slot was reused — make the pump a harmless no-op.
    ready: Mutex<Vec<u64>>,
}

/// Handle owned by [`QuoteServer`](crate::QuoteServer): spawn, observe,
/// shut down.
#[derive(Debug)]
pub(crate) struct ReactorHandle {
    shared: Arc<ReactorShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReactorHandle {
    /// Registers `listener` with a fresh epoll instance and spawns the
    /// reactor thread.
    pub(crate) fn spawn(
        listener: TcpListener,
        service: Arc<QuoteService>,
    ) -> io::Result<ReactorHandle> {
        listener.set_nonblocking(true)?;
        let mut ep = Epoll::new()?;
        if let Some(plan) = &service.config().fault {
            // Spurious-wakeup injection: the wait returns empty-handed;
            // level-triggered readiness is re-delivered by the next wait.
            ep.set_wait_fault(Box::new(SpuriousWakeups(Arc::clone(plan))));
        }
        let waker = Waker::new()?;
        ep.add(listener.as_raw_fd(), Interest::READ, TOKEN_LISTENER)?;
        ep.add(waker.as_raw_fd(), Interest::READ, TOKEN_WAKER)?;
        let shared = Arc::new(ReactorShared {
            waker,
            stop_accepting: AtomicBool::new(false),
            exit: AtomicBool::new(false),
            ready: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new().name("amopt-service-reactor".to_string()).spawn(
            move || {
                let mut reactor = Reactor {
                    ep,
                    listener: Some(listener),
                    service,
                    shared: thread_shared,
                    conns: Vec::new(),
                    free: Vec::new(),
                };
                reactor.run();
            },
        )?;
        Ok(ReactorHandle { shared, thread: Mutex::new(Some(thread)) })
    }

    /// Stops accepting new connections; established ones keep serving.
    pub(crate) fn stop_accepting(&self) {
        self.shared.stop_accepting.store(true, Ordering::Release);
        let _ = self.shared.waker.wake();
    }

    /// Tells the loop to flush answerable replies, close every
    /// connection, and exit; joins the thread.  Call *after*
    /// [`QuoteService::shutdown`] so every accepted ticket is resolvable.
    /// Idempotent.
    pub(crate) fn exit_and_join(&self) {
        self.shared.exit.store(true, Ordering::Release);
        let _ = self.shared.waker.wake();
        // Take the handle under the lock, join outside it, so concurrent
        // callers block on the join rather than on the mutex.
        let handle = lock_unpoisoned(&self.thread).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.exit_and_join();
    }
}

/// One queued reply: already encoded, or waiting on a ticket.  Replies
/// leave in request order.
enum Reply {
    Ready(String),
    Pending { id: String, ticket: Ticket },
}

/// Per-connection state: socket, resumable buffers, reply pipeline.
struct Conn {
    stream: TcpStream,
    token: u64,
    client: Client,
    /// Incremental line assembler: unparsed input waits inside it for a
    /// newline, so a request split across any number of partial reads
    /// parses identically to one delivered whole.
    lines: LineAssembler,
    /// Encoded-but-unsent output; `wpos` bytes of it are already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// In-order reply pipeline (bounded by the in-flight cap).
    pending: VecDeque<Reply>,
    /// Interest currently registered with epoll.
    registered: Interest,
    /// Peer half-closed; serve what was accepted, then close.
    peer_eof: bool,
    /// A line was rejected; after the reply flushes, drain then close.
    rejected: bool,
    /// Post-reject swallow phase: remaining byte budget and its deadline.
    draining: Option<(usize, Instant)>,
}

/// What `pump` decided about a connection.
#[derive(PartialEq)]
enum Verdict {
    Keep,
    Close,
}

struct Reactor {
    ep: Epoll,
    listener: Option<TcpListener>,
    service: Arc<QuoteService>,
    shared: Arc<ReactorShared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Events::with_capacity(EVENT_CAPACITY);
        loop {
            if self.shared.exit.load(Ordering::Acquire) {
                self.exit_flush(&mut events);
                return;
            }
            if self.shared.stop_accepting.load(Ordering::Acquire) {
                // Dropping the listener closes it; pending SYNs are
                // refused from here on.
                if let Some(listener) = self.listener.take() {
                    let _ = self.ep.delete(listener.as_raw_fd());
                }
            }
            let timeout = self.drain_timeout();
            if self.ep.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for the loop;
                // exit rather than spin.  (EINTR is retried in the shim.)
                return;
            }
            let o = self.service.obs();
            o.reactor_loop_iterations.inc();
            if !events.is_empty() {
                o.reactor_events_per_wake.record(events.len() as u64);
            }
            // A hangup (peer closed either half) is handled on the read
            // path: the next read observes EOF or the error.
            let fired: Vec<(u64, bool, bool)> = events
                .iter()
                .map(|e| (e.token, e.readable() || e.hangup(), e.writable()))
                .collect();
            // Connections first, accepts last: a close event (peer EOF)
            // delivered in the same wait as a pending SYN releases its
            // slot *before* the accept decision, so a reconnect straight
            // after `drop(conn)` observes the freed capacity instead of
            // racing it.  (Loopback FINs are processed during `close`, so
            // any wait that reports the SYN also reports those EOFs.)
            for &(token, readable, writable) in &fired {
                if token != TOKEN_LISTENER && token != TOKEN_WAKER {
                    self.pump_token(token, readable, writable);
                }
            }
            for &(token, _, _) in &fired {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                    }
                    _ => {}
                }
            }
            // Connections whose tickets resolved since the last pass.
            let ready = std::mem::take(&mut *lock_unpoisoned(&self.shared.ready));
            for token in ready {
                self.pump_token(token, false, false);
            }
            // Deadline sweeps for draining connections (a silent peer
            // only surfaces through the wait timeout).
            self.sweep_drains();
        }
    }

    /// The `epoll_wait` timeout: unbounded unless a draining connection's
    /// deadline bounds it.
    fn drain_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .iter()
            .flatten()
            .filter_map(|c| c.draining.map(|(_, deadline)| deadline.saturating_duration_since(now)))
            .min()
    }

    /// Accepts (or refuses) at most one connection per wakeup.  The
    /// listener is level-triggered, so a non-empty backlog re-fires the
    /// next `epoll_wait` immediately; routing every accept decision
    /// through its own wait is what keeps the close-before-accept
    /// ordering honest.  Draining the whole backlog here instead could
    /// scoop up a SYN that arrived mid-loop — after FINs freed its
    /// capacity, but in a wakeup that never reported those FINs — and
    /// refuse it against a stale open count.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let open = self.conns.len() - self.free.len();
            if open >= self.service.config().max_connections {
                // Full house: close immediately (the peer sees EOF and
                // can retry elsewhere) rather than queueing unboundedly.
                self.service.obs().reactor_refused.inc();
                return;
            }
            if epoll::set_nonblocking(stream.as_raw_fd()).is_err() {
                return;
            }
            stream.set_nodelay(true).ok();
            let slot = self.free.pop().unwrap_or(self.conns.len());
            let token = slot as u64 + TOKEN_CONN_BASE;
            if self.ep.add(stream.as_raw_fd(), Interest::READ, token).is_err() {
                // Return the slot only if it came from the free list: a
                // fresh slot has no `conns` entry, and pushing it onto
                // `free` would undercount open connections forever.
                if slot < self.conns.len() {
                    self.free.push(slot);
                }
                return;
            }
            let conn = Conn {
                stream,
                token,
                client: self.service.client(),
                lines: LineAssembler::new(),
                wbuf: Vec::new(),
                wpos: 0,
                pending: VecDeque::new(),
                registered: Interest::READ,
                peer_eof: false,
                rejected: false,
                draining: None,
            };
            if slot == self.conns.len() {
                self.conns.push(Some(conn));
            } else if let Some(entry) = self.conns.get_mut(slot) {
                *entry = Some(conn);
            }
            let o = self.service.obs();
            o.reactor_accepted.inc();
            o.reactor_open.add(1);
            return;
        }
    }

    /// Pumps the connection behind `token` (no-op for stale tokens).
    fn pump_token(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(slot) = token.checked_sub(TOKEN_CONN_BASE).map(|s| s as usize) else { return };
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        let verdict = pump(conn, &self.ep, &self.service, &self.shared, readable, writable);
        if verdict == Verdict::Close {
            self.close_slot(slot);
        }
    }

    /// Closes draining connections whose deadline passed.
    fn sweep_drains(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expired = self
                .conns
                .get(slot)
                .and_then(Option::as_ref)
                .and_then(|c| c.draining)
                .is_some_and(|(_, deadline)| now >= deadline);
            if expired {
                self.close_slot(slot);
            }
        }
    }

    fn close_slot(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else { return };
        let _ = self.ep.delete(conn.stream.as_raw_fd());
        self.free.push(slot);
        self.service.obs().reactor_open.sub(1);
        // `conn.stream` drops here, closing the socket.
    }

    /// Shutdown path: every accepted ticket is already resolvable (the
    /// service drained first), so resolve and flush each connection's
    /// pipeline, waiting briefly on `EPOLLOUT` for slow peers, then close
    /// everything.
    fn exit_flush(&mut self, events: &mut Events) {
        let deadline = Instant::now() + EXIT_FLUSH_DEADLINE;
        loop {
            let mut outstanding = false;
            for slot in 0..self.conns.len() {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                let verdict = pump(conn, &self.ep, &self.service, &self.shared, false, true);
                if verdict == Verdict::Close {
                    self.close_slot(slot);
                } else if self
                    .conns
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|c| !c.pending.is_empty() || c.wpos < c.wbuf.len())
                {
                    outstanding = true;
                }
            }
            if !outstanding || Instant::now() >= deadline {
                break;
            }
            if self.ep.wait(events, Some(Duration::from_millis(50))).is_err() {
                break;
            }
        }
        for slot in 0..self.conns.len() {
            self.close_slot(slot);
        }
    }
}

/// Drives one connection as far as it can go without blocking: read and
/// parse new input, resolve and encode completed replies, write, and
/// re-register interest.  Returns whether the connection stays open.
fn pump(
    conn: &mut Conn,
    ep: &Epoll,
    service: &QuoteService,
    shared: &Arc<ReactorShared>,
    readable: bool,
    writable: bool,
) -> Verdict {
    if conn.draining.is_some() {
        return pump_drain(conn);
    }
    let inflight_cap = service.config().per_conn_inflight;
    let plan = service.config().fault.as_deref();
    if readable
        && !conn.peer_eof
        && !conn.rejected
        && pump_read(conn, service, shared, inflight_cap, plan) == Verdict::Close
    {
        return Verdict::Close;
    }
    let _ = writable; // level-triggered: the write pump always tries
    loop {
        if pump_write(conn, plan) == Verdict::Close {
            return Verdict::Close;
        }
        // Draining replies frees pipeline slots while complete lines may
        // still sit in `rbuf` — parsing stops at the in-flight cap, and
        // those bytes have already left the kernel buffer, so no EPOLLIN
        // will ever re-announce them (ready-list pumps arrive with
        // `readable == false`).  Re-parse until the cap re-binds or the
        // buffer holds no complete line, writing as replies become ready.
        // This also runs under `peer_eof`, so requests fully received
        // before a half-close are answered instead of silently dropped.
        if conn.rejected {
            break;
        }
        let before = conn.pending.len();
        parse_lines(conn, service, shared, inflight_cap);
        if conn.pending.len() == before {
            break;
        }
    }
    let flushed = conn.pending.is_empty() && conn.wpos >= conn.wbuf.len();
    if flushed {
        if conn.rejected {
            // Reply delivered; now keep the close graceful: signal
            // end-of-responses and swallow what the peer is still
            // sending, bounded in bytes and time, so the error line is
            // not torn down by a TCP reset.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.draining = Some((DRAIN_BUDGET, Instant::now() + DRAIN_DEADLINE));
            conn.lines = LineAssembler::new();
            set_interest(conn, ep, Interest::READ);
            return pump_drain(conn);
        }
        if conn.peer_eof {
            return Verdict::Close;
        }
    }
    // Re-register: read while the pipeline has room (and the line wasn't
    // rejected), write only while bytes are stuck in `wbuf`.
    let want_read = !conn.peer_eof && !conn.rejected && conn.pending.len() < inflight_cap.max(1);
    let want_write = conn.wpos < conn.wbuf.len();
    let interest = match (want_read, want_write) {
        (true, true) => Interest::BOTH,
        (true, false) => Interest::READ,
        (false, true) => Interest::WRITE,
        (false, false) => Interest::NONE,
    };
    set_interest(conn, ep, interest);
    Verdict::Keep
}

fn set_interest(conn: &mut Conn, ep: &Epoll, interest: Interest) {
    if conn.registered != interest
        && ep.modify(conn.stream.as_raw_fd(), interest, conn.token).is_ok()
    {
        conn.registered = interest;
    }
}

/// Reads until `WouldBlock`, EOF, the in-flight cap, or a rejected line,
/// parsing complete lines as they arrive.  Under a [`FaultPlan`] each read
/// may be shortened, turned into a spurious `WouldBlock`, or replaced by a
/// connection reset — exercising exactly the resumption paths a hostile
/// kernel would.
fn pump_read(
    conn: &mut Conn,
    service: &QuoteService,
    shared: &Arc<ReactorShared>,
    inflight_cap: usize,
    plan: Option<&FaultPlan>,
) -> Verdict {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        if conn.pending.len() >= inflight_cap.max(1) {
            return Verdict::Keep; // backpressure: leave input in the kernel
        }
        let fault = plan.map(|p| p.read_fault(READ_CHUNK)).unwrap_or(IoFault::None);
        let read = match fault {
            IoFault::Reset => return Verdict::Close,
            IoFault::Eagain => return Verdict::Keep, // storm: retry next wake
            IoFault::Short(n) => match chunk.get_mut(..n.max(1)) {
                Some(window) => conn.stream.read(window),
                None => conn.stream.read(&mut chunk),
            },
            IoFault::None => conn.stream.read(&mut chunk),
        };
        match read {
            Ok(0) => {
                conn.peer_eof = true;
                return Verdict::Keep; // half-close: flush, then close
            }
            Ok(n) => {
                conn.lines.push(chunk.get(..n).unwrap_or_default());
                parse_lines(conn, service, shared, inflight_cap);
                if conn.rejected {
                    // Stop reading; leftover input is swallowed by the
                    // drain phase once the error reply is flushed.
                    return Verdict::Keep;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close,
        }
    }
}

/// Extracts and processes every complete line buffered in the
/// connection's [`LineAssembler`], preserving the threaded front end's
/// exact cap and UTF-8 semantics (the assembler reproduces what
/// `take(cap).read_line` would have reported: a "exceeds" error for an
/// over-long valid-UTF-8 prefix, the combined "not valid UTF-8 or
/// exceeds" error for hostile bytes or a cap mid-character).
fn parse_lines(conn: &mut Conn, service: &QuoteService, shared: &Arc<ReactorShared>, cap: usize) {
    loop {
        if conn.pending.len() >= cap.max(1) {
            return; // backpressure mid-buffer: resume after replies drain
        }
        let line = match conn.lines.next_line() {
            None => return,
            Some(Err(e)) => {
                conn.pending.push_back(Reply::Ready(wire::encode_error(
                    "null",
                    "parse",
                    &e.message(),
                )));
                conn.rejected = true;
                return;
            }
            Some(Ok(line)) => line,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Start the trace card *before* decoding so the parse interval
        // covers the actual wire decode, then stamp once the line parsed.
        let trace = service.obs().trace_start();
        let (id, decoded) = wire::decode_request(trimmed);
        let reply = match decoded {
            Err(e) => Reply::Ready(wire::encode_error(&id, "parse", &e)),
            Ok(WireRequest::Stats) => Reply::Ready(wire::encode_stats(&id, &service.stats())),
            Ok(WireRequest::Metrics) => {
                Reply::Ready(wire::encode_metrics(&id, &service.metrics_text()))
            }
            Ok(WireRequest::Trace(n)) => {
                Reply::Ready(wire::encode_trace(&id, &service.recent_traces(n)))
            }
            Ok(WireRequest::Submit(request, deadline)) => {
                if let Some(trace) = &trace {
                    trace.set_id(id.parse().unwrap_or_else(|_| service.obs().next_trace_id()));
                    trace.set_kind(ServiceObs::kind_of(&request));
                    trace.stamp(Stage::Parsed);
                }
                match conn.client.submit_traced(request, deadline, trace) {
                    Ok(ticket) => {
                        arm_notify(&ticket, shared, conn.token);
                        Reply::Pending { id, ticket }
                    }
                    Err(e) => Reply::Ready(wire::encode_result(&id, &Err(e))),
                }
            }
        };
        conn.pending.push_back(reply);
    }
}

/// Arms the ticket's completion callback: push the connection token onto
/// the ready list and kick the eventfd.  Runs on the completing worker —
/// or inline if the batch already executed — always outside queue locks.
fn arm_notify(ticket: &Ticket, shared: &Arc<ReactorShared>, token: u64) {
    let shared = Arc::clone(shared);
    ticket.set_notify(Box::new(move || {
        lock_unpoisoned(&shared.ready).push(token);
        let _ = shared.waker.wake();
    }));
}

/// Resolves replies in request order into `wbuf` and writes as much as the
/// socket accepts.  Under a [`FaultPlan`] a write may be shortened (the
/// `wpos` cursor resumes it) or replaced by a reset mid-line.
fn pump_write(conn: &mut Conn, plan: Option<&FaultPlan>) -> Verdict {
    loop {
        // Top up the write buffer from the head of the reply pipeline.
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            while let Some(front) = conn.pending.front() {
                let line = match front {
                    Reply::Ready(_) => {
                        let Some(Reply::Ready(line)) = conn.pending.pop_front() else { break };
                        line
                    }
                    Reply::Pending { ticket, .. } => {
                        let Some(result) = ticket.try_take() else { break };
                        let Some(Reply::Pending { id, .. }) = conn.pending.pop_front() else {
                            break;
                        };
                        wire::encode_result(&id, &result)
                    }
                };
                conn.wbuf.extend_from_slice(line.as_bytes());
                conn.wbuf.push(b'\n');
                if conn.wbuf.len() >= READ_CHUNK {
                    break; // write in socket-buffer-sized slabs
                }
            }
            if conn.wbuf.is_empty() {
                return Verdict::Keep; // nothing resolvable right now
            }
        }
        // Flush what we have.
        let Some(unsent) = conn.wbuf.get(conn.wpos..) else { return Verdict::Keep };
        let fault = plan.map(|p| p.write_fault(unsent.len())).unwrap_or(IoFault::None);
        let wrote = match fault {
            IoFault::Reset => return Verdict::Close,
            IoFault::Eagain => return Verdict::Keep,
            IoFault::Short(n) => conn.stream.write(unsent.get(..n.max(1)).unwrap_or(unsent)),
            IoFault::None => conn.stream.write(unsent),
        };
        match wrote {
            Ok(0) => return Verdict::Close,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close,
        }
    }
}

/// Swallows post-reject input within the byte/time budget; closes on EOF,
/// error, or an exhausted budget.
fn pump_drain(conn: &mut Conn) -> Verdict {
    let Some((mut budget, deadline)) = conn.draining else { return Verdict::Keep };
    if Instant::now() >= deadline {
        return Verdict::Close;
    }
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        if budget == 0 {
            return Verdict::Close;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Verdict::Close,
            Ok(n) => budget = budget.saturating_sub(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.draining = Some((budget, deadline));
                return Verdict::Keep;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close,
        }
    }
}
