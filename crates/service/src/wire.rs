//! Line-delimited JSON wire codec — hand-rolled, zero dependencies.
//!
//! One request per line, one response line per request, in request order.
//! Numbers are encoded with Rust's shortest-round-trip `f64` formatting and
//! decoded with `str::parse::<f64>`, so a price survives the wire
//! **bit-exactly** — the end-to-end tests rely on this.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "op": "price", "model": "bopm", "type": "call",
//!  "style": "american", "spot": 127.62, "strike": 130.0, "rate": 0.00163,
//!  "vol": 0.2, "div": 0.0163, "expiry": 1.0, "steps": 252}
//! ```
//!
//! * `op` — `"price"`, `"greeks"`, `"implied_vol"`, or `"stats"`.
//! * `id` — any JSON scalar, echoed verbatim in the response (optional).
//! * `model` — `"bopm"` (default), `"topm"`, `"bsm"`.
//! * `type` — `"call"` (default) or `"put"`.
//! * `style` — `"american"` (default), `"european"`, or `"bermudan"`
//!   (the latter requires `"dates": [step, …]`).
//! * `spot`, `strike` — required for pricing ops; `vol` is required for
//!   `price`/`greeks`; `rate`/`div` default to `0`, `expiry` to `1`,
//!   `steps` to `252` (capped at [`MAX_WIRE_STEPS`] = 2²⁰).
//! * `implied_vol` additionally requires `"market_price"` and accepts
//!   `type` to invert put quotes (always the BOPM lattice).
//! * `deadline_ms` — optional latency budget in milliseconds for any
//!   submission op.  The EDF scheduler flushes no later than the earliest
//!   queued deadline and drains earliest-deadline-first, so a tagged quote
//!   overtakes queued bulk work; untagged requests default to the server's
//!   `max_wait`.
//!
//! ## Responses
//!
//! ```json
//! {"id": 1, "ok": true, "price": 8.327021364440658}
//! {"id": 2, "ok": true, "delta": 0.58, "gamma": 0.02, "theta": -4.1, "vega": 48.6, "rho": 61.0}
//! {"id": 3, "ok": true, "implied_vol": 0.2}
//! {"id": 4, "ok": false, "kind": "overloaded", "error": "overloaded: submission queue full"}
//! ```
//!
//! `kind` on failures is `"overloaded"`, `"shutdown"`, `"pricing"`, or
//! `"parse"`; overloaded submissions were never enqueued and are safe to
//! retry with backoff.  The `stats` op answers with the counters of
//! [`ServiceStats`] flattened into one object.

use crate::types::{ServiceError, ServiceRequest, ServiceResponse, ServiceStats};
use crate::ServiceResult;
use amopt_core::batch::surface::VolQuote;
use amopt_core::batch::{ModelKind, PricingRequest, Style};
use amopt_core::{OptionParams, OptionType};
use amopt_obs::{TraceCard, FLAG_DEADLINE_MISS, FLAG_ERROR, FLAG_MEMO_HIT};
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed JSON value (the subset the wire protocol uses).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Re-encodes the value as compact JSON (used to echo request ids).
    pub fn encode(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(x) => fmt_f64(*x),
            JsonValue::Str(s) => quote(s),
            JsonValue::Arr(items) => {
                let inner: Vec<String> = items.iter().map(JsonValue::encode).collect();
                format!("[{}]", inner.join(","))
            }
            JsonValue::Obj(fields) => {
                let inner: Vec<String> =
                    fields.iter().map(|(k, v)| format!("{}:{}", quote(k), v.encode())).collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Shortest-round-trip JSON encoding of an `f64` (`null` for non-finite
/// values, which JSON cannot represent).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// JSON string quoting with the standard escapes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nesting depth guard for the parser: the wire protocol never nests past
/// 3 levels, and a hostile deeply nested line must not overflow the stack.
const MAX_DEPTH: usize = 16;

/// Largest lattice `steps` a wire request may ask for (2²⁰).  One pricing at
/// this size is seconds of work and megabytes of rows — already generous
/// next to the paper's largest experiments — while an uncapped value would
/// let a single request line pin a shared worker for hours or exhaust
/// memory.  In-process [`Client`](crate::Client) callers are trusted and
/// uncapped; the network decoder is where the line is drawn.
pub const MAX_WIRE_STEPS: usize = 1 << 20;

/// Largest request line (in bytes) the TCP front door will buffer (2²⁰).
/// Every legitimate request — even a Bermudan ladder with thousands of
/// exercise dates — fits in a fraction of this, while an unbounded
/// `read_line` would let a peer stream a newline-free line and grow server
/// memory without limit.  Oversized lines are answered with a parse error
/// and the connection is dropped.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Why [`LineAssembler`] rejected its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// No newline within the first [`MAX_LINE_BYTES`] bytes (and the
    /// buffered prefix was valid UTF-8, so the overflow is the only sin).
    TooLong,
    /// A complete line (or the buffered over-limit prefix) was not valid
    /// UTF-8.
    Malformed,
}

impl LineError {
    /// The parse-error message the front ends answer with.
    pub fn message(&self) -> String {
        match self {
            LineError::TooLong => format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            LineError::Malformed => {
                format!("request line is not valid UTF-8 or exceeds {MAX_LINE_BYTES} bytes")
            }
        }
    }
}

/// Incremental line extraction over an arbitrarily split byte stream —
/// the reader-resumption half of the wire protocol, shared by the epoll
/// reactor and property-tested in isolation.
///
/// Feed chunks with [`push`](LineAssembler::push) exactly as they arrive
/// off the socket; [`next_line`](LineAssembler::next_line) yields each
/// complete line (without its `\n`) as soon as its last byte is in,
/// independent of how the stream was split — mid-line, mid-UTF-8-sequence,
/// byte-at-a-time, it cannot matter, because assembly happens on raw bytes
/// and decoding only ever sees whole lines.  The [`MAX_LINE_BYTES`] cap
/// and UTF-8 validation match the front ends' semantics exactly; a
/// rejection is terminal (the connection is answered once and dropped, so
/// there is nothing meaningful to resynchronise onto).
#[derive(Debug, Default)]
pub struct LineAssembler {
    buf: Vec<u8>,
    /// Resume offset for the newline scan: bytes before it are known
    /// newline-free, so repeated pushes stay O(bytes), not O(bytes²).
    scan_from: usize,
    rejected: bool,
}

impl LineAssembler {
    /// An empty assembler.
    pub fn new() -> LineAssembler {
        LineAssembler::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.rejected {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered and not yet yielded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the stream was rejected (terminal).
    pub fn is_rejected(&self) -> bool {
        self.rejected
    }

    /// The next complete line, `None` when more bytes are needed, or the
    /// terminal rejection.
    pub fn next_line(&mut self) -> Option<Result<String, LineError>> {
        if self.rejected {
            return None;
        }
        let scan_end = self.buf.len().min(MAX_LINE_BYTES);
        let scan = self.buf.get(self.scan_from..scan_end).unwrap_or(&[]);
        let Some(offset) = scan.iter().position(|&b| b == b'\n') else {
            self.scan_from = scan_end;
            if self.buf.len() >= MAX_LINE_BYTES {
                // No newline within the cap: answer once, reject the rest.
                self.rejected = true;
                let prefix_ok =
                    std::str::from_utf8(self.buf.get(..MAX_LINE_BYTES).unwrap_or(&[])).is_ok();
                return Some(Err(if prefix_ok {
                    LineError::TooLong
                } else {
                    LineError::Malformed
                }));
            }
            return None;
        };
        let newline = self.scan_from + offset;
        let rest = self.buf.split_off(newline + 1);
        let mut line_bytes = std::mem::replace(&mut self.buf, rest);
        line_bytes.pop(); // the `\n`
        self.scan_from = 0;
        match String::from_utf8(line_bytes) {
            Ok(line) => Some(Ok(line)),
            Err(_) => {
                self.rejected = true;
                Some(Err(LineError::Malformed))
            }
        }
    }
}

/// Parses one JSON document (a full line of the wire protocol).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(&(b' ' | b'\t' | b'\n' | b'\r'))) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let JsonValue::Str(key) = parse_value(bytes, pos, depth + 1)? else {
                    return Err(format!("object key at byte {pos} is not a string"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes.get(*pos..).is_some_and(|rest| rest.starts_with(lit.as_bytes())) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(&(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))) {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

/// Four hex digits of a `\u` escape starting at byte `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    hex.iter().try_fold(0u32, |code, &b| {
        let digit = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return Err("bad \\u escape".to_string()),
        };
        Ok((code << 4) | u32::from(digit))
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(JsonValue::Str(out));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = match code {
                            // A high surrogate must be followed by a low
                            // one: JSON encodes non-BMP characters as a
                            // `\uD800-\uDBFF` + `\uDC00-\uDFFF` pair.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err("unpaired surrogate in \\u escape".to_string());
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("unpaired surrogate in \\u escape".to_string());
                                }
                                *pos += 6;
                                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| "bad \\u escape".to_string())?
                            }
                            0xDC00..=0xDFFF => {
                                return Err("unpaired surrogate in \\u escape".to_string())
                            }
                            _ => {
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?
                            }
                        };
                        out.push(c);
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Bulk-copy the run up to the next quote or backslash in
                // one UTF-8 validation — per-character re-validation of the
                // remaining input would make a megabyte-scale line
                // (MAX_LINE_BYTES is 2²⁰) quadratic, a cheap way to pin a
                // worker.
                let start = *pos;
                while bytes.get(*pos).is_some_and(|b| !matches!(b, b'"' | b'\\')) {
                    *pos += 1;
                }
                let run = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
                    .map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request decoding (server side)
// ---------------------------------------------------------------------------

/// A decoded wire request: a service submission (with its optional
/// `deadline_ms` latency budget) or the stats query.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Submit to the coalescing queue, scheduling with the given latency
    /// budget (`None` → the server's `max_wait`).
    Submit(ServiceRequest, Option<Duration>),
    /// Answer immediately with the service counters.
    Stats,
    /// Answer immediately with the Prometheus-style metrics exposition.
    Metrics,
    /// Answer immediately with the most recent `n` completed request
    /// trace cards (`"n"` field, default [`DEFAULT_TRACE_CARDS`]).
    Trace(usize),
}

/// Trace cards returned by a `trace` op that names no `n`.
pub const DEFAULT_TRACE_CARDS: usize = 16;

/// Decodes one request line.  Returns the echoed `id` (compact JSON,
/// `null` when absent) alongside the decoded request or a parse error.
pub fn decode_request(line: &str) -> (String, Result<WireRequest, String>) {
    let doc = match parse(line) {
        Ok(doc) => doc,
        Err(e) => return ("null".to_string(), Err(e)),
    };
    let id = doc.get("id").map(JsonValue::encode).unwrap_or_else(|| "null".to_string());
    (id, decode_request_body(&doc))
}

fn decode_request_body(doc: &JsonValue) -> Result<WireRequest, String> {
    let op = doc.get("op").and_then(JsonValue::as_str).ok_or("missing `op`")?;
    if op == "stats" {
        return Ok(WireRequest::Stats);
    }
    if op == "metrics" {
        return Ok(WireRequest::Metrics);
    }
    if op == "trace" {
        let n = match doc.get("n") {
            None => DEFAULT_TRACE_CARDS,
            Some(v) => {
                let x = v.as_f64().ok_or("`n` must be a number")?;
                if !(x.is_finite() && (1.0..=65536.0).contains(&x) && x.fract() == 0.0) {
                    return Err(format!("`n` must be a positive integer up to 65536, got {x}"));
                }
                x as usize
            }
        };
        return Ok(WireRequest::Trace(n));
    }
    let num = |key: &str| doc.get(key).and_then(JsonValue::as_f64);
    let required = |key: &str| num(key).ok_or_else(|| format!("missing number `{key}`"));
    let steps = match doc.get("steps") {
        None => 252usize,
        Some(v) => {
            let x = v.as_f64().ok_or("`steps` must be a number")?;
            if !(x.is_finite() && (1.0..=MAX_WIRE_STEPS as f64).contains(&x) && x.fract() == 0.0) {
                return Err(format!(
                    "`steps` must be a positive integer up to {MAX_WIRE_STEPS}, got {x}"
                ));
            }
            x as usize
        }
    };
    let option_type = match doc.get("type").and_then(JsonValue::as_str) {
        None | Some("call") => OptionType::Call,
        Some("put") => OptionType::Put,
        Some(other) => return Err(format!("unknown option type `{other}`")),
    };
    let deadline = match doc.get("deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v.as_f64().ok_or("`deadline_ms` must be a number")?;
            if !(ms.is_finite() && ms >= 0.0) {
                return Err(format!("`deadline_ms` must be a non-negative number, got {ms}"));
            }
            Some(Duration::from_secs_f64(ms / 1_000.0))
        }
    };
    let params = OptionParams {
        spot: required("spot")?,
        strike: required("strike")?,
        rate: num("rate").unwrap_or(0.0),
        // `implied_vol` ignores the volatility field; give it a harmless
        // positive placeholder so the parameters validate.
        volatility: num("vol").unwrap_or(if op == "implied_vol" { 0.2 } else { f64::NAN }),
        dividend_yield: num("div").unwrap_or(0.0),
        expiry: num("expiry").unwrap_or(1.0),
    };
    if op == "implied_vol" {
        let market = required("market_price")?;
        let quote = if option_type == OptionType::Put {
            VolQuote::put(params, steps, market)
        } else {
            VolQuote::new(params, steps, market)
        };
        return Ok(WireRequest::Submit(ServiceRequest::ImpliedVol(quote), deadline));
    }
    if !params.volatility.is_finite() {
        return Err("missing number `vol`".to_string());
    }
    let model = match doc.get("model").and_then(JsonValue::as_str) {
        None | Some("bopm") => ModelKind::Bopm,
        Some("topm") => ModelKind::Topm,
        Some("bsm") => ModelKind::Bsm,
        Some(other) => return Err(format!("unknown model `{other}`")),
    };
    let style = match doc.get("style").and_then(JsonValue::as_str) {
        None | Some("american") => Style::American,
        Some("european") => Style::European,
        Some("bermudan") => {
            let JsonValue::Arr(items) =
                doc.get("dates").ok_or("bermudan style requires `dates`")?
            else {
                return Err("`dates` must be an array of steps".to_string());
            };
            let mut dates = Vec::with_capacity(items.len());
            for item in items {
                let x = item.as_f64().ok_or("`dates` entries must be numbers")?;
                if !(x.is_finite() && x >= 0.0 && x.fract() == 0.0) {
                    return Err(format!("`dates` entry {x} is not a lattice step"));
                }
                dates.push(x as usize);
            }
            Style::Bermudan(dates)
        }
        Some(other) => return Err(format!("unknown style `{other}`")),
    };
    let request = PricingRequest { model, option_type, style, params, steps };
    match op {
        "price" => Ok(WireRequest::Submit(ServiceRequest::Price(request), deadline)),
        "greeks" => Ok(WireRequest::Submit(ServiceRequest::Greeks(request), deadline)),
        other => Err(format!("unknown op `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Response encoding (server side)
// ---------------------------------------------------------------------------

/// Encodes the response line for one resolved submission.
pub fn encode_result(id: &str, result: &ServiceResult) -> String {
    match result {
        Ok(ServiceResponse::Price(p)) => {
            format!("{{\"id\":{id},\"ok\":true,\"price\":{}}}", fmt_f64(*p))
        }
        Ok(ServiceResponse::Greeks(g)) => format!(
            "{{\"id\":{id},\"ok\":true,\"delta\":{},\"gamma\":{},\"theta\":{},\"vega\":{},\
             \"rho\":{}}}",
            fmt_f64(g.delta),
            fmt_f64(g.gamma),
            fmt_f64(g.theta),
            fmt_f64(g.vega),
            fmt_f64(g.rho)
        ),
        Ok(ServiceResponse::ImpliedVol(v)) => {
            format!("{{\"id\":{id},\"ok\":true,\"implied_vol\":{}}}", fmt_f64(*v))
        }
        Err(e) => {
            let kind = match e {
                ServiceError::Overloaded { .. } => "overloaded",
                ServiceError::ShuttingDown => "shutdown",
                ServiceError::Pricing(_) => "pricing",
                ServiceError::Internal { .. } => "internal",
            };
            encode_error(id, kind, &e.to_string())
        }
    }
}

/// Encodes an error response line (also used for parse failures).
pub fn encode_error(id: &str, kind: &str, message: &str) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"kind\":{},\"error\":{}}}", quote(kind), quote(message))
}

/// Encodes the stats response line.
pub fn encode_stats(id: &str, stats: &ServiceStats) -> String {
    let hist: Vec<String> =
        stats.batch_sizes.non_empty().into_iter().map(|(lo, n)| format!("[{lo},{n}]")).collect();
    let wake_hist: Vec<String> = stats
        .reactor
        .events_per_wake
        .non_empty()
        .into_iter()
        .map(|(lo, n)| format!("[{lo},{n}]"))
        .collect();
    format!(
        "{{\"id\":{id},\"ok\":true,\"queue_depth\":{},\"submitted\":{},\"completed\":{},\
         \"rejected_queue_full\":{},\"rejected_inflight\":{},\"rejected_shutdown\":{},\
         \"batches\":{},\"deadline_misses\":{},\"heap_pops\":{},\"batch_size_hist\":[{}],\
         \"mean_batch_size\":{},\"memo_hits\":{},\"memo_misses\":{},\"memo_hit_rate\":{},\
         \"memo_entries\":{},\"reactor_connections_accepted\":{},\"reactor_connections_open\":{},\
         \"reactor_connections_refused\":{},\"reactor_loop_iterations\":{},\
         \"reactor_events_per_wake_hist\":[{}],\"worker_restarts\":{},\"workers_alive\":{},\
         \"retries\":{},\"retry_budget_exhausted\":{},\"shed_price\":{},\"shed_greeks\":{},\
         \"shed_implied_vol\":{}}}",
        stats.queue_depth,
        stats.submitted,
        stats.completed,
        stats.rejected_queue_full,
        stats.rejected_inflight,
        stats.rejected_shutdown,
        stats.batches,
        stats.deadline_misses,
        stats.heap_pops,
        hist.join(","),
        fmt_f64(stats.mean_batch_size()),
        stats.memo.hits,
        stats.memo.misses,
        fmt_f64(stats.memo_hit_rate()),
        stats.memo.entries,
        stats.reactor.connections_accepted,
        stats.reactor.connections_open,
        stats.reactor.connections_refused,
        stats.reactor.loop_iterations,
        wake_hist.join(","),
        stats.worker_restarts,
        stats.workers_alive,
        stats.retries,
        stats.retry_budget_exhausted,
        stats.shed_by_class.price,
        stats.shed_by_class.greeks,
        stats.shed_by_class.implied_vol,
    )
}

/// Encodes the metrics response line: the Prometheus-style exposition as
/// one JSON-escaped string field (a scraper unescapes `text` and has the
/// standard text format).
pub fn encode_metrics(id: &str, text: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"text\":{}}}", quote(text))
}

/// Encodes the trace response line: the most recent completed trace cards,
/// oldest first, each with its id, kind, flags, stage breakdown (interval
/// name → nanoseconds, stamped stages only), and end-to-end nanoseconds.
pub fn encode_trace(id: &str, cards: &[TraceCard]) -> String {
    let mut out = format!("{{\"id\":{id},\"ok\":true,\"traces\":[");
    for (i, card) in cards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match card.kind {
            0 => "price",
            1 => "greeks",
            2 => "implied_vol",
            _ => "other",
        };
        let _ = write!(
            out,
            "{{\"id\":{},\"kind\":{},\"memo_hit\":{},\"deadline_miss\":{},\"error\":{},\
             \"stages\":{{",
            card.id,
            quote(kind),
            card.flags & FLAG_MEMO_HIT != 0,
            card.flags & FLAG_DEADLINE_MISS != 0,
            card.flags & FLAG_ERROR != 0,
        );
        for (j, (name, nanos)) in card.breakdown().into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{nanos}", quote(name));
        }
        let _ = write!(out, "}},\"end_to_end_nanos\":{}}}", card.end_to_end_nanos());
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Request encoding (client side)
// ---------------------------------------------------------------------------

/// Encodes a [`PricingRequest`] as a `price` (or `greeks`) request line
/// tagged with a `deadline_ms` latency budget.
pub fn encode_pricing_request_with_deadline(
    id: u64,
    op: &str,
    req: &PricingRequest,
    deadline_ms: f64,
) -> String {
    let mut line = encode_pricing_request(id, op, req);
    line.pop();
    let _ = write!(line, ",\"deadline_ms\":{}}}", fmt_f64(deadline_ms));
    line
}

/// Encodes a [`PricingRequest`] as a `price` (or `greeks`) request line.
pub fn encode_pricing_request(id: u64, op: &str, req: &PricingRequest) -> String {
    let model = match req.model {
        ModelKind::Bopm => "bopm",
        ModelKind::Topm => "topm",
        ModelKind::Bsm => "bsm",
    };
    let ty = match req.option_type {
        OptionType::Call => "call",
        OptionType::Put => "put",
    };
    let p = &req.params;
    let mut line = format!(
        "{{\"id\":{id},\"op\":{},\"model\":{},\"type\":{},\"spot\":{},\"strike\":{},\
         \"rate\":{},\"vol\":{},\"div\":{},\"expiry\":{},\"steps\":{}",
        quote(op),
        quote(model),
        quote(ty),
        fmt_f64(p.spot),
        fmt_f64(p.strike),
        fmt_f64(p.rate),
        fmt_f64(p.volatility),
        fmt_f64(p.dividend_yield),
        fmt_f64(p.expiry),
        req.steps,
    );
    match &req.style {
        Style::American => line.push_str(",\"style\":\"american\""),
        Style::European => line.push_str(",\"style\":\"european\""),
        Style::Bermudan(dates) => {
            let dates: Vec<String> = dates.iter().map(usize::to_string).collect();
            let _ = write!(line, ",\"style\":\"bermudan\",\"dates\":[{}]", dates.join(","));
        }
    }
    line.push('}');
    line
}

/// Encodes a [`VolQuote`] as an `implied_vol` request line.
pub fn encode_vol_request(id: u64, quote_req: &VolQuote) -> String {
    let ty = match quote_req.option_type {
        OptionType::Call => "call",
        OptionType::Put => "put",
    };
    let p = &quote_req.params;
    format!(
        "{{\"id\":{id},\"op\":\"implied_vol\",\"type\":{},\"spot\":{},\"strike\":{},\
         \"rate\":{},\"div\":{},\"expiry\":{},\"steps\":{},\"market_price\":{}}}",
        quote(ty),
        fmt_f64(p.spot),
        fmt_f64(p.strike),
        fmt_f64(p.rate),
        fmt_f64(p.dividend_yield),
        fmt_f64(p.expiry),
        quote_req.steps,
        fmt_f64(quote_req.market_price),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
        let doc = parse("{\"a\": [1, 2], \"b\": {\"c\": \"d\"}}").unwrap();
        assert_eq!(
            doc.get("a").unwrap(),
            &JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)])
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_characters() {
        // `\ud83d\ude00` is U+1F600 (😀); the pair must combine, not
        // decode half-by-half into replacement characters.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), JsonValue::Str("\u{1F600}".into()));
        assert_eq!(parse(r#""a\ud834\udd1eb""#).unwrap(), JsonValue::Str("a\u{1D11E}b".into()));
        // Raw (unescaped) non-BMP UTF-8 passes through untouched.
        assert_eq!(parse("\"\u{1F600}\"").unwrap(), JsonValue::Str("\u{1F600}".into()));
        // An id holding an escaped pair echoes back the original character.
        let (id, _) = decode_request(r#"{"id":"\ud83d\ude00","op":"stats"}"#);
        assert_eq!(id, quote("\u{1F600}"));
        // Unpaired or malformed surrogates are parse errors, not U+FFFD.
        for bad in [
            r#""\ud83d""#,       // lone high surrogate
            r#""\ud83dx""#,      // high surrogate then a literal char
            r#""\ud83d\n""#,     // high surrogate then a non-\u escape
            r#""\ud83d\u0041""#, // high surrogate then a BMP escape
            r#""\ude00""#,       // lone low surrogate
            r#""\ud83d\ud83d""#, // high surrogate twice
            r#""\u12g4""#,       // non-hex digit
            r#""\u+123""#,       // sign accepted by from_str_radix, not JSON
        ] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn cap_sized_strings_parse_in_linear_time() {
        // A MAX_LINE_BYTES-scale string value must parse with one bulk
        // UTF-8 validation per run, not one per character — the quadratic
        // version takes minutes here and hangs the suite.
        let body = "x".repeat(MAX_LINE_BYTES - 2);
        let line = format!("\"{body}\"");
        assert_eq!(parse(&line).unwrap(), JsonValue::Str(body));
        // Runs broken up by escapes and multi-byte characters still stitch
        // together correctly.
        let mixed = format!("\"{}\\n{}é\"", "a".repeat(70_000), "b".repeat(70_000));
        let JsonValue::Str(s) = parse(&mixed).unwrap() else { panic!() };
        assert_eq!(s.len(), 140_000 + 1 + 'é'.len_utf8());
        assert!(s.ends_with("bé") && s.contains('\n'));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\":1} extra", "\"unterminated", "tru"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Hostile nesting depth fails cleanly rather than overflowing.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [8.327021364440658f64, 1.0 / 3.0, f64::MIN_POSITIVE, -0.0, 1e300] {
            let encoded = fmt_f64(x);
            let JsonValue::Num(back) = parse(&encoded).unwrap() else { panic!() };
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {encoded}");
        }
    }

    #[test]
    fn pricing_request_round_trips_through_the_codec() {
        let req = PricingRequest::american(
            ModelKind::Topm,
            OptionType::Put,
            OptionParams::paper_defaults(),
            300,
        );
        let line = encode_pricing_request(7, "price", &req);
        let (id, decoded) = decode_request(&line);
        assert_eq!(id, "7");
        assert_eq!(decoded.unwrap(), WireRequest::Submit(ServiceRequest::Price(req.clone()), None));

        let bermudan =
            PricingRequest::bermudan_put(OptionParams::paper_defaults(), 128, vec![32, 64, 128]);
        let line = encode_pricing_request(8, "greeks", &bermudan);
        let (_, decoded) = decode_request(&line);
        assert_eq!(decoded.unwrap(), WireRequest::Submit(ServiceRequest::Greeks(bermudan), None));

        // The deadline tag survives the round trip as a Duration.
        let line = encode_pricing_request_with_deadline(9, "price", &req, 2.5);
        let (id, decoded) = decode_request(&line);
        assert_eq!(id, "9");
        assert_eq!(
            decoded.unwrap(),
            WireRequest::Submit(ServiceRequest::Price(req), Some(Duration::from_micros(2_500)))
        );
        // Malformed budgets are parse errors, not silent defaults.
        let (_, decoded) =
            decode_request(r#"{"op":"price","spot":100,"strike":100,"vol":0.2,"deadline_ms":-1}"#);
        assert!(decoded.unwrap_err().contains("deadline_ms"));
        let (_, decoded) = decode_request(
            r#"{"op":"price","spot":100,"strike":100,"vol":0.2,"deadline_ms":"soon"}"#,
        );
        assert!(decoded.unwrap_err().contains("deadline_ms"));
    }

    #[test]
    fn vol_request_round_trips_including_put_side() {
        let quote = VolQuote::put(OptionParams::paper_defaults(), 252, 9.25);
        let line = encode_vol_request(3, &quote);
        let (id, decoded) = decode_request(&line);
        assert_eq!(id, "3");
        let WireRequest::Submit(ServiceRequest::ImpliedVol(back), None) = decoded.unwrap() else {
            panic!()
        };
        assert_eq!(back.option_type, OptionType::Put);
        assert_eq!(back.market_price, 9.25);
        assert_eq!(back.steps, 252);
        assert_eq!(back.params.spot, quote.params.spot);
    }

    #[test]
    fn defaults_and_missing_fields() {
        let (_, decoded) = decode_request(r#"{"op":"price","spot":100,"strike":100,"vol":0.2}"#);
        let WireRequest::Submit(ServiceRequest::Price(req), None) = decoded.unwrap() else {
            panic!()
        };
        assert_eq!(req.steps, 252);
        assert_eq!(req.model, ModelKind::Bopm);
        assert_eq!(req.style, Style::American);
        assert_eq!(req.params.expiry, 1.0);

        let (_, decoded) = decode_request(r#"{"op":"price","spot":100,"strike":100}"#);
        assert!(decoded.unwrap_err().contains("vol"));
        // A hostile steps value is rejected at the codec, before any
        // lattice is built.
        let (_, decoded) =
            decode_request(r#"{"op":"price","spot":100,"strike":100,"vol":0.2,"steps":999999999}"#);
        assert!(decoded.unwrap_err().contains("steps"));
        let (_, decoded) = decode_request(r#"{"op":"nope","spot":1,"strike":1,"vol":0.2}"#);
        assert!(decoded.is_err());
        let (id, decoded) = decode_request("not json at all");
        assert_eq!(id, "null");
        assert!(decoded.is_err());
        let (_, stats) = decode_request(r#"{"op":"stats"}"#);
        assert_eq!(stats.unwrap(), WireRequest::Stats);
    }

    #[test]
    fn responses_encode_to_parseable_lines() {
        let line = encode_result("42", &Ok(ServiceResponse::Price(8.5)));
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("price").unwrap().as_f64(), Some(8.5));
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(42.0));

        let line = encode_result(
            "\"abc\"",
            &Err(ServiceError::Overloaded { what: "submission queue full" }),
        );
        let doc = parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("abc"));
    }

    /// Pins the `stats` reply byte-for-byte: the fields, their order, and
    /// their formatting are wire compatibility.  Migrating the counters
    /// onto the obs registry must never be visible to a `stats` consumer —
    /// if this test needs updating, that migration leaked.
    #[test]
    fn stats_wire_format_is_pinned_byte_for_byte() {
        use crate::types::{BatchHistogram, ReactorStats, ShedByClass};
        use amopt_core::batch::MemoStats;

        let mut batch_sizes = BatchHistogram::default();
        batch_sizes.0[0] = 1; // one singleton batch
        batch_sizes.0[2] = 3; // three batches of size 4..=7
        let mut events_per_wake = BatchHistogram::default();
        events_per_wake.0[1] = 9;
        let stats = ServiceStats {
            queue_depth: 3,
            submitted: 100,
            completed: 96,
            rejected_queue_full: 2,
            rejected_inflight: 1,
            rejected_shutdown: 0,
            batches: 24,
            deadline_misses: 5,
            heap_pops: 30,
            batch_sizes,
            memo: MemoStats {
                hits: 50,
                misses: 50,
                evictions: 7,
                entries: 20,
                capacity: 100,
                shards: 8,
            },
            worker_restarts: 1,
            workers_alive: 8,
            retries: 4,
            retry_budget_exhausted: 1,
            shed_by_class: ShedByClass { price: 2, greeks: 1, implied_vol: 0 },
            reactor: ReactorStats {
                connections_accepted: 10,
                connections_open: 2,
                connections_refused: 1,
                loop_iterations: 500,
                events_per_wake,
            },
        };
        assert_eq!(
            encode_stats("7", &stats),
            "{\"id\":7,\"ok\":true,\"queue_depth\":3,\"submitted\":100,\"completed\":96,\
             \"rejected_queue_full\":2,\"rejected_inflight\":1,\"rejected_shutdown\":0,\
             \"batches\":24,\"deadline_misses\":5,\"heap_pops\":30,\
             \"batch_size_hist\":[[1,1],[4,3]],\"mean_batch_size\":4,\"memo_hits\":50,\
             \"memo_misses\":50,\"memo_hit_rate\":0.5,\"memo_entries\":20,\
             \"reactor_connections_accepted\":10,\"reactor_connections_open\":2,\
             \"reactor_connections_refused\":1,\"reactor_loop_iterations\":500,\
             \"reactor_events_per_wake_hist\":[[2,9]],\"worker_restarts\":1,\"workers_alive\":8,\
             \"retries\":4,\"retry_budget_exhausted\":1,\"shed_price\":2,\"shed_greeks\":1,\
             \"shed_implied_vol\":0}"
        );
    }

    #[test]
    fn metrics_and_trace_requests_decode() {
        let (_, decoded) = decode_request(r#"{"id":1,"op":"metrics"}"#);
        assert_eq!(decoded.unwrap(), WireRequest::Metrics);
        let (_, decoded) = decode_request(r#"{"id":1,"op":"trace"}"#);
        assert_eq!(decoded.unwrap(), WireRequest::Trace(DEFAULT_TRACE_CARDS));
        let (_, decoded) = decode_request(r#"{"id":1,"op":"trace","n":4}"#);
        assert_eq!(decoded.unwrap(), WireRequest::Trace(4));
        for bad in [
            r#"{"op":"trace","n":0}"#,
            r#"{"op":"trace","n":65537}"#,
            r#"{"op":"trace","n":2.5}"#,
            r#"{"op":"trace","n":"all"}"#,
        ] {
            let (_, decoded) = decode_request(bad);
            assert!(decoded.is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn metrics_reply_round_trips_the_exposition_text() {
        let text = "# TYPE amopt_x counter\namopt_x 1\n";
        let doc = parse(&encode_metrics("3", text)).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("text").unwrap().as_str(), Some(text));
    }
}
