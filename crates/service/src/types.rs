//! Typed request/response surface of the quote service.

use amopt_core::batch::surface::VolQuote;
use amopt_core::batch::{MemoStats, PricingRequest};
use amopt_core::greeks::Greeks;
use amopt_core::PricingError;
use std::fmt;

/// One quote a client can submit to the service.
///
/// Every variant rides the same submission queue and coalesces into the
/// same batches; the executor groups a drained batch by variant and runs
/// each group through its batch-native driver
/// ([`price_batch`](amopt_core::batch::BatchPricer::price_batch), the
/// [greeks ladder](amopt_core::batch::greeks::greeks), the
/// [lockstep surface inversion](amopt_core::batch::surface::implied_vol_surface)),
/// so requests of the same kind share dedup and lockstep rounds.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// Price one contract (any model × type × style the batch layer routes).
    Price(PricingRequest),
    /// Full finite-difference greeks ladder for one contract.
    Greeks(PricingRequest),
    /// Invert one implied-volatility quote (American BOPM call or put).
    ImpliedVol(VolQuote),
}

/// The successful answer to a [`ServiceRequest`], variant-matched to it.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// Price of the requested contract.
    Price(f64),
    /// Greeks of the requested contract.
    Greeks(Greeks),
    /// Implied volatility reproducing the quoted market price.
    ImpliedVol(f64),
}

/// Why a submission failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The service shed this request: the bounded submission queue was full
    /// or the connection exceeded its in-flight cap.  The request was *not*
    /// enqueued; retry with backoff.
    Overloaded {
        /// Which limit rejected the request.
        what: &'static str,
    },
    /// The service is draining for shutdown and accepts no new requests.
    ShuttingDown,
    /// The request was executed and the pricer rejected it (invalid
    /// parameters, unsupported combination, no convergence, …).
    Pricing(PricingError),
    /// The service's own bookkeeping broke — e.g. a response of the wrong
    /// kind for the request.  A bug, surfaced as an error instead of a
    /// worker panic so one bad request cannot take the service down.
    Internal {
        /// What went wrong.
        what: &'static str,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { what } => write!(f, "overloaded: {what}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Pricing(e) => write!(f, "{e}"),
            ServiceError::Internal { what } => write!(f, "internal service error: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PricingError> for ServiceError {
    fn from(e: PricingError) -> Self {
        ServiceError::Pricing(e)
    }
}

/// Number of power-of-two buckets in the batch-size histogram (bucket `i`
/// counts flushed batches of size in `[2^i, 2^{i+1})`; sizes beyond the
/// last bucket land in it).
pub const BATCH_HIST_BUCKETS: usize = 16;

/// Histogram of flushed batch sizes in power-of-two buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchHistogram(pub [u64; BATCH_HIST_BUCKETS]);

impl BatchHistogram {
    /// Bucket index for a batch of `size` requests.
    pub fn bucket_of(size: usize) -> usize {
        ((usize::BITS - 1 - size.max(1).leading_zeros()) as usize).min(BATCH_HIST_BUCKETS - 1)
    }

    /// Total batches recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// `(lower bound, count)` for every non-empty bucket.
    pub fn non_empty(&self) -> Vec<(usize, u64)> {
        self.0.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (1usize << i, c)).collect()
    }
}

/// Requests shed by the brownout degradation tiers, per request class
/// (see [`DegradationPolicy`](crate::config::DegradationPolicy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShedByClass {
    /// Untagged price quotes shed.
    pub price: u64,
    /// Untagged greeks ladders shed.
    pub greeks: u64,
    /// Untagged implied-vol inversions shed.
    pub implied_vol: u64,
}

impl ShedByClass {
    /// Total requests shed across all classes.
    pub fn total(&self) -> u64 {
        self.price + self.greeks + self.implied_vol
    }
}

/// Counters of the epoll reactor front end, all zero when the service is
/// driven in-process or by the legacy threaded front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReactorStats {
    /// Connections the reactor has accepted since start.
    pub connections_accepted: u64,
    /// Connections currently registered with the event loop.
    pub connections_open: u64,
    /// Accepts refused because the connection cap was reached.
    pub connections_refused: u64,
    /// Event-loop iterations (one per `epoll_wait` return).
    pub loop_iterations: u64,
    /// Ready events delivered per `epoll_wait` return, power-of-two
    /// bucketed — the loop-iteration histogram: a right-shifted mass means
    /// each wakeup served many connections.
    pub events_per_wake: BatchHistogram,
}

/// Point-in-time service counters, from
/// [`QuoteService::stats`](crate::QuoteService::stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests currently waiting in the submission queue (the EDF heap).
    pub queue_depth: usize,
    /// Requests accepted into the queue since start.
    pub submitted: u64,
    /// Requests answered (successfully or with a pricing error).
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected by a per-connection in-flight cap.
    pub rejected_inflight: u64,
    /// Submissions rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Batches flushed to the executor.
    pub batches: u64,
    /// Requests with a caller-supplied budget
    /// ([`submit_with_deadline`](crate::queue::Client::submit_with_deadline))
    /// answered after that deadline had already passed.  Requests without a
    /// budget never count: their implicit `max_wait` deadline is the flush
    /// trigger itself, not a promise to the caller.
    pub deadline_misses: u64,
    /// EDF heap pops across all flushes; `heap_pops / batches` is the mean
    /// per-flush pop count (pops exceed drained entries when the
    /// fair-share cap parks and re-queues over-share work).
    pub heap_pops: u64,
    /// Sizes of those batches, power-of-two bucketed.
    pub batch_sizes: BatchHistogram,
    /// Memo counters of the shared `BatchPricer`.
    pub memo: MemoStats,
    /// Worker threads that died (panicked out of the worker loop) and were
    /// respawned by the watchdog.
    pub worker_restarts: u64,
    /// Worker threads currently alive.
    pub workers_alive: u64,
    /// Retries performed by [`Client::call_with_retry`](crate::Client::call_with_retry).
    pub retries: u64,
    /// Retries refused because the retry budget was exhausted.
    pub retry_budget_exhausted: u64,
    /// Requests shed by the brownout degradation tiers, per class.
    pub shed_by_class: ShedByClass,
    /// Event-loop counters of the serving reactor (zeros elsewhere).
    pub reactor: ReactorStats,
}

impl ServiceStats {
    /// Memo hit rate over the service's lifetime (`0.0` before any probe).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo.hits + self.memo.misses;
        if total == 0 {
            0.0
        } else {
            self.memo.hits as f64 / total as f64
        }
    }

    /// Mean flushed batch size (`0.0` before any flush).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(BatchHistogram::bucket_of(1), 0);
        assert_eq!(BatchHistogram::bucket_of(2), 1);
        assert_eq!(BatchHistogram::bucket_of(3), 1);
        assert_eq!(BatchHistogram::bucket_of(4), 2);
        assert_eq!(BatchHistogram::bucket_of(255), 7);
        assert_eq!(BatchHistogram::bucket_of(256), 8);
        // Zero is clamped into the first bucket rather than panicking.
        assert_eq!(BatchHistogram::bucket_of(0), 0);
    }

    #[test]
    fn histogram_accumulates_and_reports() {
        let mut h = BatchHistogram::default();
        for size in [1usize, 1, 2, 3, 300] {
            h.0[BatchHistogram::bucket_of(size)] += 1;
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.non_empty(), vec![(1, 2), (2, 2), (256, 1)]);
    }

    #[test]
    fn error_display_names_the_limit() {
        let e = ServiceError::Overloaded { what: "submission queue full" };
        assert!(e.to_string().contains("queue full"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting down"));
    }
}
