//! Service tuning knobs.

use amopt_core::batch::{DEFAULT_MEMO_CAPACITY, DEFAULT_MEMO_SHARDS};
use amopt_core::EngineConfig;
use std::time::Duration;

/// Which TCP front end [`QuoteServer::bind`](crate::QuoteServer::bind)
/// serves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// Single-threaded epoll reactor: one thread multiplexes every
    /// connection through nonblocking sockets, incremental line buffers,
    /// and an eventfd completion waker.  Holds thousands of idle
    /// connections; the default.
    #[default]
    Reactor,
    /// Legacy thread-per-connection front end: two OS threads per
    /// accepted socket.  Kept as the equivalence baseline and for
    /// connection-count comparisons; replies are byte-identical for every
    /// accepted request, but pipelining past the per-connection in-flight
    /// cap is rejected with `overloaded` errors here where the reactor
    /// backpressures instead (see [`QuoteServer`](crate::QuoteServer)).
    Threaded,
}

/// Configuration of a [`QuoteService`](crate::QuoteService).
///
/// The two coalescing knobs trade latency for batch efficiency:
/// `max_batch` caps how much work one flush carries (bounding per-request
/// queueing delay under load), `max_wait` caps how long a lone request
/// waits for company (bounding latency when traffic is thin).  A batch
/// flushes at whichever limit is hit first.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine configuration every routed pricer runs under.
    pub engine: EngineConfig,
    /// Flush a batch once it holds this many requests.
    pub max_batch: usize,
    /// Flush a batch once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Submission-queue capacity; submits beyond it are rejected with
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded).
    pub queue_depth: usize,
    /// Worker threads assembling and executing batches.  Each worker
    /// executes its batch through the shared `BatchPricer`, whose internal
    /// fan-out runs on the `amopt-parallel` fork-join pool; more than one
    /// worker lets a fresh batch coalesce while the previous one executes.
    pub workers: usize,
    /// Maximum requests a single connection / client handle may have in
    /// flight.  In-process [`Client`](crate::Client) submits (and the
    /// threaded front end, which submits on the reader thread) reject
    /// beyond it with `Overloaded`; the reactor front end instead stops
    /// reading the connection at the cap and resumes as replies drain.
    pub per_conn_inflight: usize,
    /// Total memo capacity passed through to the shared `BatchPricer`
    /// (`0` disables cross-batch memoization).
    pub memo_capacity: usize,
    /// Memo shard count passed through to the shared `BatchPricer`.
    pub memo_shards: usize,
    /// Which TCP front end serves connections (in-process use ignores it).
    pub front_end: FrontEnd,
    /// Connections the reactor will hold open at once; accepts beyond it
    /// are closed immediately.  The threaded front end ignores this (its
    /// cap is whatever the OS lets it spawn).
    pub max_connections: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_batch: 256,
            max_wait: Duration::from_millis(2),
            queue_depth: 4096,
            workers: 2,
            per_conn_inflight: 1024,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            memo_shards: DEFAULT_MEMO_SHARDS,
            front_end: FrontEnd::default(),
            max_connections: 10_000,
        }
    }
}

impl ServiceConfig {
    /// Normalises degenerate values (zero batch size, zero workers, …) to
    /// their smallest working settings.
    pub(crate) fn normalised(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.workers = self.workers.max(1);
        self.per_conn_inflight = self.per_conn_inflight.max(1);
        self.memo_shards = self.memo_shards.max(1);
        self.max_connections = self.max_connections.max(1);
        self
    }
}
