//! Service tuning knobs.

use crate::fault::FaultPlan;
use amopt_core::batch::{DEFAULT_MEMO_CAPACITY, DEFAULT_MEMO_SHARDS};
use amopt_core::EngineConfig;
use std::sync::Arc;
use std::time::Duration;

/// Which TCP front end [`QuoteServer::bind`](crate::QuoteServer::bind)
/// serves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// Single-threaded epoll reactor: one thread multiplexes every
    /// connection through nonblocking sockets, incremental line buffers,
    /// and an eventfd completion waker.  Holds thousands of idle
    /// connections; the default.
    #[default]
    Reactor,
    /// Legacy thread-per-connection front end: two OS threads per
    /// accepted socket.  Kept as the equivalence baseline and for
    /// connection-count comparisons; replies are byte-identical for every
    /// accepted request, but pipelining past the per-connection in-flight
    /// cap is rejected with `overloaded` errors here where the reactor
    /// backpressures instead (see [`QuoteServer`](crate::QuoteServer)).
    Threaded,
}

/// Configuration of a [`QuoteService`](crate::QuoteService).
///
/// The two coalescing knobs trade latency for batch efficiency:
/// `max_batch` caps how much work one flush carries (bounding per-request
/// queueing delay under load), `max_wait` caps how long a lone request
/// waits for company (bounding latency when traffic is thin).  A batch
/// flushes at whichever limit is hit first.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine configuration every routed pricer runs under.
    pub engine: EngineConfig,
    /// Flush a batch once it holds this many requests.
    pub max_batch: usize,
    /// Flush a batch once its oldest request has waited this long.
    pub max_wait: Duration,
    /// Submission-queue capacity; submits beyond it are rejected with
    /// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded).
    pub queue_depth: usize,
    /// Worker threads assembling and executing batches.  Each worker
    /// executes its batch through the shared `BatchPricer`, whose internal
    /// fan-out runs on the `amopt-parallel` fork-join pool; more than one
    /// worker lets a fresh batch coalesce while the previous one executes.
    pub workers: usize,
    /// Maximum requests a single connection / client handle may have in
    /// flight.  In-process [`Client`](crate::Client) submits (and the
    /// threaded front end, which submits on the reader thread) reject
    /// beyond it with `Overloaded`; the reactor front end instead stops
    /// reading the connection at the cap and resumes as replies drain.
    pub per_conn_inflight: usize,
    /// Total memo capacity passed through to the shared `BatchPricer`
    /// (`0` disables cross-batch memoization).
    pub memo_capacity: usize,
    /// Memo shard count passed through to the shared `BatchPricer`.
    pub memo_shards: usize,
    /// Which TCP front end serves connections (in-process use ignores it).
    pub front_end: FrontEnd,
    /// Connections the reactor will hold open at once; accepts beyond it
    /// are closed immediately.  The threaded front end ignores this (its
    /// cap is whatever the OS lets it spawn).
    pub max_connections: usize,
    /// Brownout shedding thresholds (see [`DegradationPolicy`]).
    pub degradation: DegradationPolicy,
    /// Retries the in-process retry budget starts with (and is capped at).
    /// Each retry spends one token; every clean first-attempt success
    /// earns a tenth back, so sustained failure cannot amplify load by
    /// more than the budget (see
    /// [`Client::call_with_retry`](crate::Client::call_with_retry)).
    pub retry_budget: usize,
    /// Deterministic fault-injection plan threaded through every layer
    /// (`None`, the default, injects nothing and costs nothing on the hot
    /// path beyond one pointer test).
    pub fault: Option<Arc<FaultPlan>>,
    /// Whether per-request trace cards are stamped and journaled.  On by
    /// default: a card is one `Arc` allocation at accept plus lock-free
    /// CAS stamps; the bench overhead gate pins the cost under 3%.
    pub trace: bool,
    /// Event-journal ring capacity (completed trace cards, fault firings,
    /// sheds, retries, worker restarts, deadline misses).  Rounded up to a
    /// power of two; the ring overwrites oldest-first, so size it for the
    /// window a post-mortem needs.
    pub journal_capacity: usize,
}

/// Brownout degradation tiers: queue-fill fractions past which each
/// request class is shed with
/// [`ServiceError::Overloaded`](crate::ServiceError::Overloaded) instead
/// of queued.
///
/// The class ordering encodes the service's priorities under pressure:
/// implied-vol surface inversions (the most expensive per request) shed
/// first, greeks ladders second, plain price quotes last — and
/// deadline-tagged submissions skip brownout entirely, consistent with
/// the EDF scheduler preferring them.  A fraction `>= 1.0` disables that
/// tier (only a full queue rejects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Queue-fill fraction past which untagged implied-vol quotes shed.
    pub shed_implied_vol_at: f64,
    /// Queue-fill fraction past which untagged greeks ladders shed.
    pub shed_greeks_at: f64,
    /// Queue-fill fraction past which untagged price quotes shed.
    pub shed_price_at: f64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy { shed_implied_vol_at: 0.50, shed_greeks_at: 0.75, shed_price_at: 0.95 }
    }
}

impl DegradationPolicy {
    /// A policy that never sheds by class (every tier disabled).
    pub fn off() -> Self {
        DegradationPolicy { shed_implied_vol_at: 1.0, shed_greeks_at: 1.0, shed_price_at: 1.0 }
    }

    /// Whether a class at fill fraction `threshold` sheds when the queue
    /// holds `fill` of `depth` entries.
    pub(crate) fn sheds(threshold: f64, fill: usize, depth: usize) -> bool {
        threshold < 1.0 && (fill as f64) >= threshold * (depth as f64)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_batch: 256,
            max_wait: Duration::from_millis(2),
            queue_depth: 4096,
            workers: 2,
            per_conn_inflight: 1024,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            memo_shards: DEFAULT_MEMO_SHARDS,
            front_end: FrontEnd::default(),
            max_connections: 10_000,
            degradation: DegradationPolicy::default(),
            retry_budget: 128,
            fault: None,
            trace: true,
            journal_capacity: 4096,
        }
    }
}

impl ServiceConfig {
    /// Normalises degenerate values (zero batch size, zero workers, …) to
    /// their smallest working settings.
    pub(crate) fn normalised(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.workers = self.workers.max(1);
        self.per_conn_inflight = self.per_conn_inflight.max(1);
        self.memo_shards = self.memo_shards.max(1);
        self.max_connections = self.max_connections.max(1);
        self.journal_capacity = self.journal_capacity.max(8);
        self
    }
}
