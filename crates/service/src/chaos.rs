//! Seeded chaos soak: drive a faulty service with a retrying client fleet
//! and check the self-healing invariants.
//!
//! [`soak`] runs the same deterministic request book twice: once against a
//! fault-free server to capture the *reference* reply for every request,
//! then against a server compiled with [`FaultPlan::hostile`] for the
//! given seed — short reads and writes, EAGAIN storms, spurious wakeups,
//! connection resets, clock skew, worker panics, stalls, and worker
//! deaths, all firing on a schedule that is a pure function of the seed.
//! A fleet of retrying wire clients works through the book under fire,
//! following the retry-safety rules the service documents:
//!
//! * **retry** `overloaded` replies and transport failures with *zero*
//!   reply bytes (the request was never answered; resubmission is
//!   idempotent-safe);
//! * **never resubmit** after a torn reply (partial bytes arrived — the
//!   request may already be answered; a resend risks a double answer).
//!
//! The soak then asserts the chaos invariants:
//!
//! 1. every request is answered exactly once or accounted lost, and
//!    nothing is lost beyond the torn replies the rules forbid retrying;
//! 2. every delivered `ok` reply is **byte-identical** to the fault-free
//!    reference reply;
//! 3. steady state is restored — the queue drains, `submitted` equals
//!    `completed`, and the worker pool is back at full strength;
//! 4. the fault schedule is reproducible: the report carries
//!    [`FaultPlan::schedule_hash`], and rebuilding the plan from the same
//!    seed yields the same hash.
//!
//! [`ChaosConfig::inject_unhandled`] arms [`FaultSite::LostReply`] — the
//! deliberately unhandled class that drops drained batch entries.  CI runs
//! one such soak and requires it to *fail*, proving the gate can catch a
//! service that swallows replies.

use crate::fault::{FaultPlan, FaultSchedule, FaultSite, FaultStats};
use crate::tcp::{QuoteServer, TcpQuoteClient};
use crate::wire;
use crate::{Event, ServiceConfig, ServiceStats};
use amopt_core::batch::surface::VolQuote;
use amopt_core::batch::{ModelKind, PricingRequest};
use amopt_core::{OptionParams, OptionType};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Attempts per request (first try plus retries) before it counts lost.
const MAX_ATTEMPTS: u32 = 8;
/// Client read timeout: a reply not delivered within this is treated as a
/// transport failure (retried when no reply byte arrived).
const RECV_TIMEOUT: Duration = Duration::from_secs(2);
/// How long the soak waits for the service to settle after the fleet
/// finishes (queue drained, submitted == completed, workers respawned).
const SETTLE_DEADLINE: Duration = Duration::from_secs(5);
/// Worker threads the chaos server runs (also the respawn target).
const CHAOS_WORKERS: usize = 3;

/// Parameters of one [`soak`] run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed the fault plan and the request book are compiled from.
    pub seed: u64,
    /// Requests in the book (min 1).
    pub requests: usize,
    /// Concurrent client connections working through the book (min 1).
    pub conns: usize,
    /// Arm the deliberately unhandled [`FaultSite::LostReply`] class; the
    /// soak is then *expected to fail* (CI's proof the gate works).
    pub inject_unhandled: bool,
    /// Minimum total faults the run must fire, else it is a violation
    /// (`0` disables the floor).
    pub min_faults: u64,
}

impl ChaosConfig {
    /// The standard soak for `seed`: 1200 requests over 6 connections,
    /// at least 500 faults, unhandled class disarmed.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, requests: 1200, conns: 6, inject_unhandled: false, min_faults: 500 }
    }

    /// Returns the config with the request count set to `n`.
    pub fn with_requests(mut self, n: usize) -> ChaosConfig {
        self.requests = n;
        self
    }

    /// Returns the config with the unhandled fault class armed and the
    /// fault floor dropped (the run is expected to fail on invariants,
    /// not on volume).
    pub fn unhandled(mut self) -> ChaosConfig {
        self.inject_unhandled = true;
        self.min_faults = 0;
        self
    }
}

/// Client-fleet tallies, merged across connections.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    answered_ok: u64,
    answered_err: u64,
    shed_replies: u64,
    retried: u64,
    torn: u64,
    lost: u64,
    mismatches: u64,
}

impl Tally {
    fn add(&mut self, other: &Tally) {
        self.answered_ok += other.answered_ok;
        self.answered_err += other.answered_err;
        self.shed_replies += other.shed_replies;
        self.retried += other.retried;
        self.torn += other.torn;
        self.lost += other.lost;
        self.mismatches += other.mismatches;
    }
}

/// Everything one [`soak`] run observed, plus the invariant violations it
/// found ([`passed`](ChaosReport::passed) means none).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Seed the run was compiled from.
    pub seed: u64,
    /// [`FaultPlan::schedule_hash`] of the plan that ran — rebuild the
    /// plan from the same seed and schedule to verify reproducibility.
    pub schedule_hash: u64,
    /// Fired-fault counts per site.
    pub faults: FaultStats,
    /// Requests answered with an `ok` reply (each checked against the
    /// fault-free reference).
    pub answered_ok: u64,
    /// Requests answered with a non-retryable error reply.
    pub answered_err: u64,
    /// `overloaded` replies observed (each either retried or, with the
    /// attempt budget spent, surfaced as the final answer).
    pub shed_replies: u64,
    /// Retries the fleet performed (overloaded replies + zero-byte
    /// transport failures).
    pub retried: u64,
    /// Replies torn mid-line (counted lost; never resubmitted).
    pub torn: u64,
    /// Requests with no final answer: torn replies plus exhausted retries.
    pub lost: u64,
    /// Delivered `ok` replies that differed from the reference run.
    pub mismatches: u64,
    /// Service-side accepted submissions (includes fleet retries).
    pub submitted: u64,
    /// Service-side completed requests.
    pub completed: u64,
    /// Queue depth after the settle wait (steady state ⇒ 0).
    pub queue_depth_after: usize,
    /// Live workers after the settle wait.
    pub workers_alive: u64,
    /// Workers the pool is configured for.
    pub workers_expected: u64,
    /// Workers the watchdog respawned during the run.
    pub worker_restarts: u64,
    /// Full service-side stats snapshot after the settle wait (the fields
    /// above are the headline subset; the journal audit needs the rest —
    /// retries, sheds per class, deadline misses).
    pub service: ServiceStats,
    /// Quiesced event-journal snapshot taken after shutdown, oldest first.
    /// The soak sizes the ring so nothing is evicted: every fault firing,
    /// shed, retry, restart, and trace card of the run is here.
    pub journal: Vec<Event>,
    /// Invariant violations (empty ⇔ the soak passed).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether every chaos invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable summary (what `quote_server chaos`
    /// prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("chaos soak: seed {}\n", self.seed));
        out.push_str(&format!("schedule hash: {:#018x}\n", self.schedule_hash));
        out.push_str(&format!("faults fired: {} total", self.faults.total()));
        for (name, count) in self.faults.non_zero() {
            out.push_str(&format!("  {name}:{count}"));
        }
        out.push('\n');
        out.push_str(&format!(
            "replies: {} ok, {} err ({} overloaded), {} retried, {} torn, {} lost, {} mismatched\n",
            self.answered_ok,
            self.answered_err,
            self.shed_replies,
            self.retried,
            self.torn,
            self.lost,
            self.mismatches,
        ));
        out.push_str(&format!(
            "service: submitted {}, completed {}, queue depth {}, workers {}/{} ({} restarts)\n",
            self.submitted,
            self.completed,
            self.queue_depth_after,
            self.workers_alive,
            self.workers_expected,
            self.worker_restarts,
        ));
        if self.violations.is_empty() {
            out.push_str("verdict: PASS — every chaos invariant held\n");
        } else {
            out.push_str("verdict: FAIL\n");
            for v in &self.violations {
                out.push_str(&format!("  violation: {v}\n"));
            }
        }
        out
    }
}

/// One request the fleet will fire: the wire line and the reply the
/// fault-free reference run delivered for it.
#[derive(Debug, Clone)]
struct BookEntry {
    line: String,
    expected: String,
}

/// Builds the deterministic request book for `seed`: a mix of price
/// quotes, greeks ladders, and implied-vol inversions over varying
/// contracts, with every fifth price/greeks request deadline-tagged.
fn build_book(seed: u64, n: usize) -> Vec<String> {
    let mix = |x: u64| crate::fault::splitmix64(seed ^ 0xb00c_b00c ^ x);
    let mut lines = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let r = mix(i);
        let strike = 80.0 + (r % 64) as f64;
        let steps = 32 + 16 * ((r >> 8) % 3) as usize;
        let option_type = if r & (1 << 16) == 0 { OptionType::Call } else { OptionType::Put };
        let params = OptionParams { strike, ..OptionParams::paper_defaults() };
        let line = match (r >> 32) % 4 {
            0 | 1 => {
                let req = PricingRequest::american(ModelKind::Bopm, option_type, params, steps);
                if i % 5 == 4 {
                    wire::encode_pricing_request_with_deadline(i, "price", &req, 50.0)
                } else {
                    wire::encode_pricing_request(i, "price", &req)
                }
            }
            2 => {
                let req = PricingRequest::american(ModelKind::Bopm, option_type, params, steps);
                wire::encode_pricing_request(i, "greeks", &req)
            }
            _ => {
                // A market price in a plausible band; some inversions fail
                // with a pricing error — also a deterministic reply.
                let market = 4.0 + ((r >> 40) % 16) as f64;
                wire::encode_vol_request(i, &VolQuote::new(params, steps, market))
            }
        };
        lines.push(line);
    }
    lines
}

/// The service configuration both runs share (the chaos run adds the
/// fault plan).
fn soak_config(fault: Option<Arc<FaultPlan>>) -> ServiceConfig {
    ServiceConfig {
        workers: CHAOS_WORKERS,
        max_batch: 32,
        max_wait: Duration::from_millis(1),
        fault,
        // Sized so the event journal cannot evict mid-soak: the report's
        // journal snapshot must hold *every* fault firing and decision for
        // the exactly-once audit in tests/chaos.rs.
        journal_capacity: 1 << 15,
        ..ServiceConfig::default()
    }
}

/// Runs the book sequentially against a fault-free server and returns the
/// reference reply for every request.
fn reference_replies(lines: &[String]) -> io::Result<Vec<String>> {
    let server = QuoteServer::bind("127.0.0.1:0", soak_config(None))?;
    let mut client = TcpQuoteClient::connect(server.local_addr())?;
    let mut replies = Vec::with_capacity(lines.len());
    for line in lines {
        replies.push(client.roundtrip(line)?);
    }
    server.shutdown();
    Ok(replies)
}

/// One fleet connection working through its slice of the book, applying
/// the retry-safety rules.
fn run_client(addr: SocketAddr, book: Vec<BookEntry>) -> Tally {
    let mut tally = Tally::default();
    let mut conn: Option<TcpQuoteClient> = None;
    'book: for entry in &book {
        let mut attempts = 0u32;
        loop {
            if attempts >= MAX_ATTEMPTS {
                tally.lost += 1;
                continue 'book;
            }
            attempts += 1;
            if conn.is_none() {
                match TcpQuoteClient::connect(addr) {
                    Ok(fresh) => {
                        let _ = fresh.set_read_timeout(Some(RECV_TIMEOUT));
                        conn = Some(fresh);
                    }
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                }
            }
            let Some(client) = conn.as_mut() else { continue };
            if client.send(&entry.line).is_err() {
                // Nothing of this request was answered; reconnect and retry.
                conn = None;
                tally.retried += 1;
                continue;
            }
            match client.recv() {
                Ok(reply) => {
                    if reply.contains("\"ok\":true") {
                        tally.answered_ok += 1;
                        if reply != entry.expected {
                            tally.mismatches += 1;
                        }
                        continue 'book;
                    }
                    if reply.contains("\"kind\":\"overloaded\"") {
                        // Shed before enqueue: the one reply class that is
                        // idempotent-safe to retry.
                        tally.shed_replies += 1;
                        if attempts < MAX_ATTEMPTS {
                            tally.retried += 1;
                            std::thread::sleep(Duration::from_millis(attempts as u64));
                            continue;
                        }
                        tally.answered_err += 1;
                        continue 'book;
                    }
                    // Parse/pricing/internal errors executed (or can never
                    // execute): final answers, never retried.
                    tally.answered_err += 1;
                    continue 'book;
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Torn reply: bytes arrived, then the transport died.
                    // The request may already be answered server-side, so
                    // resubmitting risks a double answer — count it lost.
                    tally.torn += 1;
                    tally.lost += 1;
                    conn = None;
                    continue 'book;
                }
                Err(_) => {
                    // Zero reply bytes (EOF, reset, or timeout before the
                    // first byte): idempotent-safe to retry on a fresh
                    // connection — a late reply on the abandoned one can
                    // never be confused with the retry's.
                    conn = None;
                    tally.retried += 1;
                    continue;
                }
            }
        }
    }
    tally
}

/// Runs the full chaos soak for `cfg` and reports what held and what
/// broke.  Errors only on harness failures (bind/spawn/reference-run I/O);
/// invariant breakage lands in [`ChaosReport::violations`].
pub fn soak(cfg: &ChaosConfig) -> io::Result<ChaosReport> {
    let lines = build_book(cfg.seed, cfg.requests.max(1));
    let expected = reference_replies(&lines)?;
    let book: Vec<BookEntry> = lines
        .into_iter()
        .zip(expected)
        .map(|(line, expected)| BookEntry { line, expected })
        .collect();

    let schedule = if cfg.inject_unhandled {
        FaultSchedule::hostile().with_rate(FaultSite::LostReply, 48)
    } else {
        FaultSchedule::hostile()
    };
    let plan = FaultPlan::new(cfg.seed, schedule);
    let server = QuoteServer::bind("127.0.0.1:0", soak_config(Some(Arc::clone(&plan))))?;
    let addr = server.local_addr();

    let chunk_len = book.len().div_ceil(cfg.conns.max(1));
    let mut handles = Vec::new();
    let mut spawn_err = None;
    for chunk in book.chunks(chunk_len.max(1)) {
        let chunk = chunk.to_vec();
        let spawned = std::thread::Builder::new()
            .name("amopt-chaos-client".to_string())
            .spawn(move || run_client(addr, chunk));
        match spawned {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                spawn_err = Some(e);
                break;
            }
        }
    }
    let mut tally = Tally::default();
    for handle in handles {
        if let Ok(t) = handle.join() {
            tally.add(&t);
        }
    }
    if let Some(e) = spawn_err {
        server.shutdown();
        return Err(e);
    }

    // Steady state: wait (bounded) for the queue to drain, every accepted
    // request to complete, and the watchdog to bring the pool back to
    // strength.
    let deadline = Instant::now() + SETTLE_DEADLINE;
    let mut stats = server.service().stats();
    while (stats.queue_depth > 0
        || stats.completed < stats.submitted
        || stats.workers_alive < CHAOS_WORKERS as u64)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
        stats = server.service().stats();
    }
    server.shutdown();
    // Snapshot the journal only after shutdown: with no concurrent writers
    // the seqlocked ring skips nothing, so the copy is complete.
    let journal = server.service().journal().snapshot();
    let faults = plan.stats();

    let mut violations = Vec::new();
    if tally.mismatches > 0 {
        violations.push(format!(
            "{} delivered ok replies differed from the fault-free reference",
            tally.mismatches
        ));
    }
    if tally.lost > tally.torn {
        violations.push(format!(
            "{} requests lost vs {} torn replies — a reply vanished inside the service",
            tally.lost, tally.torn
        ));
    }
    if stats.submitted != stats.completed {
        violations.push(format!(
            "accepted requests not answered exactly once: submitted {}, completed {}",
            stats.submitted, stats.completed
        ));
    }
    if stats.queue_depth > 0 {
        violations.push(format!("queue failed to drain: {} entries left", stats.queue_depth));
    }
    if stats.workers_alive != CHAOS_WORKERS as u64 {
        violations.push(format!(
            "worker pool not restored: {} of {CHAOS_WORKERS} alive",
            stats.workers_alive
        ));
    }
    if cfg.min_faults > 0 && faults.total() < cfg.min_faults {
        violations.push(format!("only {} faults fired (floor {})", faults.total(), cfg.min_faults));
    }
    if cfg.min_faults > 0 {
        for (count, label) in [
            (faults.io_total(), "transport I/O"),
            (faults.fired_at(FaultSite::WorkerPanic), "worker-panic"),
            (faults.fired_at(FaultSite::WorkerStall), "worker-stall"),
        ] {
            if count == 0 {
                violations.push(format!("no {label} faults fired — that class went unexercised"));
            }
        }
    }

    Ok(ChaosReport {
        seed: cfg.seed,
        schedule_hash: plan.schedule_hash(),
        faults,
        answered_ok: tally.answered_ok,
        answered_err: tally.answered_err,
        shed_replies: tally.shed_replies,
        retried: tally.retried,
        torn: tally.torn,
        lost: tally.lost,
        mismatches: tally.mismatches,
        submitted: stats.submitted,
        completed: stats.completed,
        queue_depth_after: stats.queue_depth,
        workers_alive: stats.workers_alive,
        workers_expected: CHAOS_WORKERS as u64,
        worker_restarts: stats.worker_restarts,
        service: stats,
        journal,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_passes_and_reproduces_its_schedule_hash() {
        let cfg = ChaosConfig { min_faults: 0, ..ChaosConfig::new(7) }.with_requests(48);
        let report = soak(&cfg).expect("soak harness");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(
            report.answered_ok + report.answered_err + report.lost,
            48,
            "every request must be accounted for: {report:?}"
        );
        let replay = FaultPlan::hostile(7);
        assert_eq!(report.schedule_hash, replay.schedule_hash());
        assert!(report.render().contains("PASS"));
    }
}
