//! # amopt-service
//!
//! A batch-coalescing quote service front-end over
//! [`BatchPricer`](amopt_core::batch::BatchPricer) — the layer between "fast
//! kernel" and "system under traffic".
//!
//! The batch subsystem wins by deduplication, memoization, and lockstep
//! parallel fan-out — but only when callers hand it *batches*.  Production
//! traffic arrives as independent quotes.  This crate manufactures the
//! batches: requests from any number of clients land in one bounded
//! submission queue, a worker pool coalesces them by **deadline and size**
//! (a batch flushes when it reaches [`ServiceConfig::max_batch`] requests
//! or when its oldest request has waited [`ServiceConfig::max_wait`],
//! whichever comes first) and executes each batch through one shared
//! `BatchPricer`, so co-arriving quotes share dedup, the sharded memo, and
//! the fork-join pool exactly as a hand-built batch would.
//!
//! Load shedding is explicit: when the submission queue is at
//! [`ServiceConfig::queue_depth`] or a connection exceeds its in-flight cap,
//! the submit fails *immediately* with [`ServiceError::Overloaded`] — no
//! silent latency cliff, no unbounded buffering.  Shutdown is graceful:
//! accepted requests are drained and answered before the workers exit.
//!
//! Two front doors share the same queue:
//!
//! * the in-process [`Client`] handle (`service.client()`), for embedding
//!   the service in another Rust process;
//! * a TCP listener ([`QuoteServer`]) speaking a line-delimited JSON wire
//!   protocol ([`wire`]), hand-rolled in this crate so the container needs
//!   no external dependencies.  By default it is served by a
//!   single-threaded epoll [`reactor`] that multiplexes thousands of
//!   connections; [`FrontEnd::Threaded`] keeps the legacy
//!   thread-per-connection baseline.
//!
//! Submissions may carry an optional **deadline budget**
//! ([`Client::submit_with_deadline`], wire field `deadline_ms`); the
//! scheduler is earliest-deadline-first with per-client fair shares, so a
//! tagged quote overtakes queued bulk work instead of waiting behind it.
//!
//! ```
//! use amopt_service::{QuoteService, ServiceConfig, ServiceRequest, ServiceResponse};
//! use amopt_core::batch::{ModelKind, PricingRequest};
//! use amopt_core::{OptionParams, OptionType};
//!
//! let service = QuoteService::start(ServiceConfig::default()).expect("spawn workers");
//! let client = service.client();
//! let req = PricingRequest::american(
//!     ModelKind::Bopm,
//!     OptionType::Call,
//!     OptionParams::paper_defaults(),
//!     252,
//! );
//! let ServiceResponse::Price(price) = client.call(ServiceRequest::Price(req)).unwrap() else {
//!     panic!("price request returns a price response");
//! };
//! assert!((price - 8.32).abs() < 0.05);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod config;
pub mod fault;
mod obs;
mod queue;
pub mod reactor;
pub mod sync;
mod tcp;
mod types;
pub mod wire;

pub use chaos::{soak, ChaosConfig, ChaosReport};
pub use config::{DegradationPolicy, FrontEnd, ServiceConfig};
pub use fault::{FaultPlan, FaultSchedule, FaultSite, FaultStats, FAULT_SITES};
pub use queue::{Client, QuoteService, RetryPolicy, Ticket};
pub use tcp::{QuoteServer, TcpQuoteClient};
pub use types::{
    BatchHistogram, ReactorStats, ServiceError, ServiceRequest, ServiceResponse, ServiceStats,
    ShedByClass,
};

// Re-exported observability vocabulary, so wire consumers and the chaos
// tests can decode journal events and trace cards without depending on
// `amopt-obs` directly.
pub use amopt_obs::{
    Event, EventKind, Journal, Stage, TraceCard, FLAG_ABANDONED, FLAG_DEADLINE_MISS, FLAG_ERROR,
    FLAG_MEMO_HIT,
};

/// Result alias for service submissions.
pub type ServiceResult = std::result::Result<ServiceResponse, ServiceError>;
