//! Poison-transparent lock and condvar helpers.
//!
//! The service's shared state (`QueueState`, worker handles, connection
//! writers) is protected by `std::sync::Mutex`es.  Every piece of that
//! state is kept consistent *before* any operation that can panic — a
//! poisoned mutex here means a bug panicked somewhere unrelated while
//! holding the lock, not that the protected data is torn.  Refusing to run
//! would turn one dead worker into a dead service, so the whole crate
//! adopts poison-transparency: take the data, keep serving, and let the
//! original panic surface through the owning thread's join.
//!
//! That policy lives in exactly these helpers so it is written down once
//! and `amopt-lint`'s panic-surface check can ban per-site
//! `.lock().unwrap()` everywhere else.

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, treating poison as transparent (see the module docs for why
/// that is sound here).
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    unpoison(m.lock())
}

/// `cv.wait(guard)` with transparent poison handling.
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    unpoison(cv.wait(guard))
}

/// `cv.wait_timeout(guard, dur)` with transparent poison handling.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    unpoison(cv.wait_timeout(guard, dur))
}

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7_i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
    }

    #[test]
    fn wait_timeout_unpoisoned_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock_unpoisoned(&m);
        let (_guard, res) = wait_timeout_unpoisoned(&cv, guard, Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
