//! TCP front door: a listener speaking the line-delimited JSON protocol of
//! [`wire`](crate::wire), one connection per client, responses in request
//! order.
//!
//! Two interchangeable front ends serve the protocol, selected by
//! [`ServiceConfig::front_end`](crate::ServiceConfig::front_end).  Every
//! request the service accepts is answered with byte-identical reply
//! lines on either; they diverge only in how a connection that pipelines
//! past its in-flight cap is paced (see below):
//!
//! * [`FrontEnd::Reactor`] (default) — a single-threaded epoll event loop
//!   (see [`reactor`](crate::reactor)) multiplexing every connection
//!   through nonblocking sockets and incremental line buffers.  Scales to
//!   thousands of mostly-idle connections.
//! * [`FrontEnd::Threaded`] — the legacy pair of OS threads per
//!   connection: a **reader** (parse a line, submit to the shared
//!   coalescing queue, forward the ticket) and a **writer** (resolve
//!   tickets in order, write one response line each).  The channel between
//!   them is bounded at the connection's in-flight cap, so a connection
//!   that stops reading its responses eventually stalls its own reader —
//!   TCP backpressure.  Kept as the equivalence baseline.
//!
//! In both, submissions rejected because the shared queue is full are
//! answered immediately with `"kind":"overloaded"` error lines and never
//! occupy queue space.  The per-connection in-flight cap is where the
//! front ends intentionally differ: the threaded reader has already
//! pulled the over-cap line off the socket, so it answers it with an
//! `overloaded` error too; the reactor stops reading at the cap and lets
//! TCP backpressure pace the client, so over-cap pipelining is delayed —
//! every line is eventually answered — and never rejected on that cap.

use crate::config::FrontEnd;
use crate::fault::FaultyStream;
use crate::queue::{Client, QuoteService, Ticket};
use crate::reactor::ReactorHandle;
use crate::types::ServiceStats;
use crate::wire::{self, WireRequest};
use crate::ServiceConfig;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One line the writer thread owes the socket.
enum Outgoing {
    /// Already-encoded response (errors, stats).
    Ready(String),
    /// A pending submission: wait, then encode.
    Pending {
        /// Echoed request id (compact JSON).
        id: String,
        /// Resolves to the response when the coalesced batch executes.
        ticket: Ticket,
    },
}

/// A [`QuoteService`] listening on a TCP socket.
///
/// ```no_run
/// use amopt_service::{QuoteServer, ServiceConfig, TcpQuoteClient};
///
/// let server = QuoteServer::bind("127.0.0.1:0", ServiceConfig::default()).unwrap();
/// let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
/// let reply = client
///     .roundtrip(r#"{"id":1,"op":"price","spot":127.62,"strike":130,"vol":0.2,"rate":0.00163,"div":0.0163,"steps":252}"#)
///     .unwrap();
/// assert!(reply.contains("\"ok\":true"));
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct QuoteServer {
    service: Arc<QuoteService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    reactor: Option<ReactorHandle>,
}

impl QuoteServer {
    /// Starts a [`QuoteService`] with `cfg` and listens on `addr`
    /// (`127.0.0.1:0` picks a free port; see [`local_addr`]).
    ///
    /// `cfg.front_end` selects the serving strategy.  The wire protocol is
    /// the same and every accepted request gets byte-identical reply lines
    /// either way; the front ends differ only when a connection pipelines
    /// past [`per_conn_inflight`](ServiceConfig::per_conn_inflight) —
    /// [`FrontEnd::Threaded`] rejects the excess with `overloaded` error
    /// lines, [`FrontEnd::Reactor`] pauses reads and answers everything
    /// once replies drain.
    ///
    /// [`local_addr`]: QuoteServer::local_addr
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let front_end = cfg.front_end;
        let service = Arc::new(QuoteService::start(cfg)?);
        let stop = Arc::new(AtomicBool::new(false));
        match front_end {
            FrontEnd::Reactor => {
                let reactor = match ReactorHandle::spawn(listener, Arc::clone(&service)) {
                    Ok(handle) => handle,
                    Err(e) => {
                        service.shutdown();
                        return Err(e);
                    }
                };
                Ok(QuoteServer { service, addr, stop, accept_thread: None, reactor: Some(reactor) })
            }
            FrontEnd::Threaded => {
                let accept_thread = {
                    let accept_service = Arc::clone(&service);
                    let accept_stop = Arc::clone(&stop);
                    let spawned = std::thread::Builder::new()
                        .name("amopt-service-accept".to_string())
                        .spawn(move || accept_loop(&listener, &accept_service, &accept_stop));
                    match spawned {
                        Ok(handle) => handle,
                        Err(e) => {
                            service.shutdown();
                            return Err(e);
                        }
                    }
                };
                Ok(QuoteServer {
                    service,
                    addr,
                    stop,
                    accept_thread: Some(accept_thread),
                    reactor: None,
                })
            }
        }
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (stats, in-process clients).
    pub fn service(&self) -> &QuoteService {
        &self.service
    }

    /// Scheduler stats merged with front-end (reactor) stats — the same
    /// view the wire `stats` op serves.  Both now read from the one
    /// metrics registry, so this is just [`QuoteService::stats`].
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// The Prometheus-style metrics exposition — the same text the wire
    /// `metrics` op serves.
    pub fn metrics_text(&self) -> String {
        self.service.metrics_text()
    }

    /// Stops accepting connections, then drains and stops the service
    /// ([`QuoteService::shutdown`] semantics).  Established connections are
    /// answered for everything already accepted: the threaded front end's
    /// connection threads exit when the peers disconnect; the reactor
    /// flushes every pending reply (bounded) before closing its sockets.
    pub fn shutdown(&self) {
        if !self.stop.swap(true, Ordering::AcqRel) {
            match &self.reactor {
                Some(reactor) => {
                    reactor.stop_accepting();
                    self.service.shutdown();
                    reactor.exit_and_join();
                    return;
                }
                None => {
                    // Wake the blocking accept with a throwaway connection.
                    let _ = TcpStream::connect(self.addr);
                }
            }
        }
        self.service.shutdown();
    }
}

impl Drop for QuoteServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<QuoteService>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let client = service.client();
        let service = Arc::clone(service);
        // The channel bound mirrors the per-connection in-flight cap so
        // completed-but-unwritten responses stay bounded too.
        let channel_bound = service.config().per_conn_inflight;
        let _ = std::thread::Builder::new()
            .name("amopt-service-conn".to_string())
            .spawn(move || handle_connection(stream, &service, client, channel_bound));
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<QuoteService>,
    client: Client,
    channel_bound: usize,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let Ok(control) = stream.try_clone() else { return };
    // Under a fault plan both halves transfer through a `FaultyStream`
    // (short reads/writes, mid-line resets); `control` keeps a plain handle
    // for the shutdown/timeout calls the graceful-close drain needs.
    match service.config().fault.clone() {
        Some(plan) => serve_lines(
            BufReader::new(FaultyStream::new(stream, Arc::clone(&plan))),
            BufWriter::new(FaultyStream::new(write_half, plan)),
            control,
            service,
            client,
            channel_bound,
        ),
        None => serve_lines(
            BufReader::new(stream),
            BufWriter::new(write_half),
            control,
            service,
            client,
            channel_bound,
        ),
    }
}

fn serve_lines<R, W>(
    mut reader: BufReader<R>,
    mut out: BufWriter<W>,
    control: TcpStream,
    service: &Arc<QuoteService>,
    client: Client,
    channel_bound: usize,
) where
    R: Read,
    W: Write + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(channel_bound.max(1));
    let spawned = std::thread::Builder::new().name("amopt-service-conn-writer".to_string()).spawn(
        move || {
            while let Ok(msg) = rx.recv() {
                let line = match msg {
                    Outgoing::Ready(line) => line,
                    Outgoing::Pending { id, ticket } => wire::encode_result(&id, &ticket.wait()),
                };
                if out.write_all(line.as_bytes()).is_err()
                    || out.write_all(b"\n").is_err()
                    || out.flush().is_err()
                {
                    return;
                }
            }
        },
    );
    // No writer thread means no way to answer: drop the connection (the
    // peer sees a clean close and can retry elsewhere).
    let Ok(writer) = spawned else { return };

    let mut line = String::new();
    // Set when a line was rejected (too long or not UTF-8) and a final
    // error response is queued: the close must then be graceful enough for
    // the peer to actually receive it (see the drain below).
    let mut rejected_line = false;
    loop {
        line.clear();
        // Read through a `take` so a newline-free line cannot grow the
        // buffer past the codec's cap; a line that fills the cap without a
        // terminating newline is hostile (or hopelessly malformed) — answer
        // once and drop the connection.
        let n = match (&mut reader).take(wire::MAX_LINE_BYTES as u64).read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Not UTF-8: hostile bytes, or the cap landed mid-character
                // on an oversized line.  Either way it cannot parse — keep
                // the documented contract (answer once, then drop) instead
                // of closing silently.
                let _ = tx.send(Outgoing::Ready(wire::encode_error(
                    "null",
                    "parse",
                    &format!(
                        "request line is not valid UTF-8 or exceeds {} bytes",
                        wire::MAX_LINE_BYTES
                    ),
                )));
                rejected_line = true;
                break;
            }
            Err(_) => break, // broken pipe
        };
        if n >= wire::MAX_LINE_BYTES && !line.ends_with('\n') {
            let _ = tx.send(Outgoing::Ready(wire::encode_error(
                "null",
                "parse",
                &format!("request line exceeds {} bytes", wire::MAX_LINE_BYTES),
            )));
            rejected_line = true;
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Start the trace card before decoding so the parse interval covers
        // the wire decode (mirrors the reactor front end).
        let trace = service.obs().trace_start();
        let (id, decoded) = wire::decode_request(trimmed);
        let outgoing = match decoded {
            Err(e) => Outgoing::Ready(wire::encode_error(&id, "parse", &e)),
            Ok(WireRequest::Stats) => Outgoing::Ready(wire::encode_stats(&id, &service.stats())),
            Ok(WireRequest::Metrics) => {
                Outgoing::Ready(wire::encode_metrics(&id, &service.metrics_text()))
            }
            Ok(WireRequest::Trace(n)) => {
                Outgoing::Ready(wire::encode_trace(&id, &service.recent_traces(n)))
            }
            Ok(WireRequest::Submit(request, deadline)) => {
                if let Some(trace) = &trace {
                    trace.set_id(id.parse().unwrap_or_else(|_| service.obs().next_trace_id()));
                    trace.set_kind(crate::obs::ServiceObs::kind_of(&request));
                    trace.stamp(amopt_obs::Stage::Parsed);
                }
                match client.submit_traced(request, deadline, trace) {
                    Ok(ticket) => Outgoing::Pending { id, ticket },
                    Err(e) => Outgoing::Ready(wire::encode_result(&id, &Err(e))),
                }
            }
        };
        if tx.send(outgoing).is_err() {
            break; // writer died (peer stopped reading)
        }
    }
    drop(tx); // writer drains the channel, then exits
    let _ = writer.join();
    if rejected_line {
        // The peer may still be mid-send (e.g. the rest of an oversized
        // line).  Closing now, with unread bytes pending, elicits a TCP RST
        // that can discard the error line the writer just flushed.  Signal
        // end-of-responses, then swallow the leftover input — bounded in
        // both bytes and time so a hostile peer cannot pin the thread —
        // before dropping the socket.
        let _ = control.shutdown(std::net::Shutdown::Write);
        let _ = control.set_read_timeout(Some(Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut scratch = [0u8; 8192];
        let mut budget: usize = 64 << 20;
        while budget > 0 && std::time::Instant::now() < deadline {
            match reader.get_mut().read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => budget = budget.saturating_sub(n),
            }
        }
    }
}

/// Blocking line-protocol client, for load generators, examples, and tests.
///
/// Requests can be pipelined: [`send`](TcpQuoteClient::send) any number of
/// lines, then [`recv`](TcpQuoteClient::recv) the response lines in order.
#[derive(Debug)]
pub struct TcpQuoteClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpQuoteClient {
    /// Connects to a [`QuoteServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpQuoteClient { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one request line (newline appended) without waiting.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line.
    ///
    /// A connection that dies *mid-line* surfaces as an `InvalidData`
    /// "torn reply" error, never as a truncated line: a reply is either
    /// delivered whole (newline-terminated) or not at all, so a caller can
    /// safely treat anything this returns as a complete server response.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = match self.reader.read_line(&mut line) {
            Ok(n) => n,
            // `read_line` preserves bytes delivered before the failure: a
            // non-empty buffer means the transport died (or timed out)
            // *mid-reply*, which a retrying caller must treat as torn —
            // resubmitting after partial delivery risks a double answer.
            Err(_) if !line.is_empty() => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "torn reply line (transport failed mid-reply)",
                ));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        if !line.ends_with('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "torn reply line (connection died mid-reply)",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Bounds how long [`recv`](TcpQuoteClient::recv) blocks (`None`
    /// restores blocking reads).  Chaos clients use this so a lost reply
    /// surfaces as a timeout instead of a hang.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// One request, one response.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_pricing_request, parse, JsonValue};
    use amopt_core::batch::{BatchPricer, ModelKind, PricingRequest};
    use amopt_core::{EngineConfig, OptionParams, OptionType};
    use std::time::Duration;

    fn server() -> QuoteServer {
        QuoteServer::bind(
            "127.0.0.1:0",
            ServiceConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
        )
        .expect("bind loopback")
    }

    #[test]
    fn wire_price_is_bitwise_the_direct_batch_price() {
        let server = server();
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams::paper_defaults(),
            252,
        );
        let reply = client.roundtrip(&encode_pricing_request(1, "price", &req)).unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{reply}");
        let got = doc.get("price").unwrap().as_f64().unwrap();
        let want = BatchPricer::new(EngineConfig::default()).price_one(&req).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = server();
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        for i in 0..10u64 {
            let req = PricingRequest::american(
                ModelKind::Bopm,
                OptionType::Call,
                OptionParams { strike: 100.0 + i as f64, ..OptionParams::paper_defaults() },
                64,
            );
            client.send(&encode_pricing_request(i, "price", &req)).unwrap();
        }
        for i in 0..10u64 {
            let doc = parse(&client.recv().unwrap()).unwrap();
            assert_eq!(doc.get("id").unwrap().as_f64(), Some(i as f64), "in-order ids");
            assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        }
        server.shutdown();
    }

    #[test]
    fn parse_errors_and_stats_answer_inline() {
        let server = server();
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        let reply = client.roundtrip("{\"op\":\"price\"}").unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("parse"));

        let reply = client.roundtrip("{\"id\":9,\"op\":\"stats\"}").unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert!(doc.get("queue_depth").is_some(), "{reply}");
        assert!(doc.get("memo_hit_rate").is_some(), "{reply}");
        server.shutdown();
    }

    #[test]
    fn greeks_and_implied_vol_round_trip_over_the_wire() {
        let server = server();
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams::paper_defaults(),
            128,
        );
        let reply = client.roundtrip(&encode_pricing_request(1, "greeks", &req)).unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{reply}");
        assert!(doc.get("delta").unwrap().as_f64().unwrap() > 0.0);

        // Manufacture an exactly attainable quote, then invert it.
        let price_reply = client.roundtrip(&encode_pricing_request(2, "price", &req)).unwrap();
        let market = parse(&price_reply).unwrap().get("price").unwrap().as_f64().unwrap();
        let vol_line = format!(
            "{{\"id\":3,\"op\":\"implied_vol\",\"spot\":{},\"strike\":{},\"rate\":{},\
             \"div\":{},\"steps\":128,\"market_price\":{}}}",
            OptionParams::paper_defaults().spot,
            OptionParams::paper_defaults().strike,
            OptionParams::paper_defaults().rate,
            OptionParams::paper_defaults().dividend_yield,
            market
        );
        let reply = client.roundtrip(&vol_line).unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{reply}");
        let vol = doc.get("implied_vol").unwrap().as_f64().unwrap();
        assert!((vol - 0.2).abs() < 1e-6, "round-trip vol {vol}");
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected_and_the_connection_dropped() {
        let server = server();
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        // A newline-free line past the cap must not buffer unboundedly: the
        // server answers once with a parse error and closes the connection.
        let huge = "x".repeat(wire::MAX_LINE_BYTES + 1024);
        client.send(&huge).unwrap();
        let reply = client.recv().unwrap();
        let doc = parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)), "{reply}");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("parse"));
        assert!(client.recv().is_err(), "oversized line must close the connection");
        // The cap splitting a multi-byte character still answers before the
        // drop (read_line surfaces that as InvalidData, not as a clean cap
        // hit), as does outright non-UTF-8 input.
        for tail in [&[0xF0u8, 0x9F, 0x98, 0x80][..], &[0xFFu8, 0xFE][..]] {
            let mut raw = TcpStream::connect(server.local_addr()).unwrap();
            let mut payload = vec![b'x'; wire::MAX_LINE_BYTES - 2];
            payload.extend_from_slice(tail);
            payload.push(b'\n');
            raw.write_all(&payload).unwrap();
            let mut reply = String::new();
            BufReader::new(&raw).read_line(&mut reply).unwrap();
            let doc = parse(reply.trim()).unwrap();
            assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)), "{reply}");
            assert_eq!(doc.get("kind").unwrap().as_str(), Some("parse"));
        }
        // A fresh connection still works: the cap is per line, not global.
        let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams::paper_defaults(),
            32,
        );
        let reply = client.roundtrip(&encode_pricing_request(1, "price", &req)).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn shutdown_then_connect_is_refused_or_closed() {
        let server = server();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the accept loop is gone: either the connect fails
        // outright or the next request gets no response.
        if let Ok(mut client) = TcpQuoteClient::connect(addr) {
            let req = PricingRequest::american(
                ModelKind::Bopm,
                OptionType::Call,
                OptionParams::paper_defaults(),
                32,
            );
            let _ = client.send(&encode_pricing_request(1, "price", &req));
            assert!(client.recv().is_err(), "a post-shutdown connection must not be served");
        }
    }
}
