//! Multi-step linear stencil advancement over aperiodic and periodic grids.
//!
//! `advance(seg, kernel, h)` evolves a row segment `h` time steps under a
//! *purely linear* stencil and returns exactly the cells whose dependency
//! cone is contained in the input — the primitive the trapezoid algorithms of
//! the paper invoke on certified all-red regions.
//!
//! Output geometry: one step maps input column `c + anchor + m` onto output
//! column `c`, so after `h` steps the valid output covers absolute columns
//! `[start − h·anchor, start − h·anchor + len − h·span)`.

use crate::kernel::StencilKernel;
use crate::segment::Segment;
use amopt_fft::{correlate_power_valid_with, FftScratch};
use amopt_parallel::WorkspacePool;
use std::sync::OnceLock;

/// Per-worker scratch for the advance primitives: FFT buffers plus a staging
/// row for callers that assemble padded/stitched inputs before advancing.
///
/// Engines running inside a fork-join pool check one of these out of the
/// process-wide pool ([`with_scratch`]) per linear advance, so steady-state
/// pricing — in particular the batch layer's hot loop — allocates only the
/// output rows it actually keeps.  Buffers grow to the largest problem seen
/// and stay checked in for reuse (bounded by peak worker concurrency).
#[derive(Debug, Default)]
pub struct AdvanceScratch {
    /// Caller-assembled input row (padded premiums, zero-extended reds, …).
    pub staging: Vec<f64>,
    /// Reusable FFT transform buffers.
    pub fft: FftScratch,
}

/// Runs `f` with an [`AdvanceScratch`] checked out of the process-wide pool.
///
/// The pool grows to at most the number of concurrently active workers; a
/// sequential caller reuses a single scratch forever.
pub fn with_scratch<R>(f: impl FnOnce(&mut AdvanceScratch) -> R) -> R {
    static POOL: OnceLock<WorkspacePool<AdvanceScratch>> = OnceLock::new();
    POOL.get_or_init(WorkspacePool::new).with(AdvanceScratch::default, f)
}

/// Strategy for computing a multi-step advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Spectrum powering, `O(L log L)` — the paper's algorithm.
    #[default]
    Fft,
    /// Materialise `kernel^{⊛h}` and correlate directly, `O(L·h·span)`.
    /// Used for ablation and small problems.
    DirectTaps,
    /// `h` explicit single steps, `O(L·h)` — the reference semantics.
    Stepped,
}

/// Number of valid output cells when advancing `len` cells by `h` steps.
/// Returns `None` if the cone swallows the whole segment.
pub fn valid_output_len(len: usize, kernel: &StencilKernel, h: u64) -> Option<usize> {
    let shrink = (kernel.span() as u64).checked_mul(h)? as usize;
    len.checked_sub(shrink)
}

/// Absolute start column of the output segment.
#[inline]
pub fn output_start(start: i64, kernel: &StencilKernel, h: u64) -> i64 {
    start - kernel.anchor() * h as i64
}

/// Advances `seg` by `h` linear steps using the requested backend.
///
/// Scratch comes from the process-wide pool ([`with_scratch`]); callers that
/// already hold scratch (or stage their input in one) should use
/// [`advance_values_with`] directly.
///
/// # Panics
/// If the segment is too short to produce at least one valid cell.
pub fn advance(seg: &Segment, kernel: &StencilKernel, h: u64, backend: Backend) -> Segment {
    with_scratch(|s| advance_values_with(&seg.values, seg.start, kernel, h, backend, &mut s.fft))
}

/// [`advance`] over a raw value slice anchored at absolute column `start`,
/// reusing caller-owned FFT scratch.  Bitwise identical to [`advance`].
///
/// # Panics
/// If the slice is too short to produce at least one valid cell.
pub fn advance_values_with(
    values: &[f64],
    start: i64,
    kernel: &StencilKernel,
    h: u64,
    backend: Backend,
    fft: &mut FftScratch,
) -> Segment {
    // amopt-lint: hot-path
    let out_len =
        valid_output_len(values.len(), kernel, h).filter(|&l| l > 0).unwrap_or_else(|| {
            panic!(
                "segment of {} cells cannot be advanced {h} steps by a span-{} kernel",
                values.len(),
                kernel.span()
            )
        });
    let start = output_start(start, kernel, h);
    if h == 0 {
        // amopt-lint: allow(hot-path-alloc) -- h = 0 identity copies the input into the output segment the caller keeps
        return Segment::new(start, values.to_vec());
    }
    let out = match backend {
        Backend::Fft => {
            // Small problems: the stepped loop beats FFT constants and keeps
            // base cases allocation-light.
            if values.len() <= 64 {
                stepped(values, kernel, h)
            } else {
                correlate_power_valid_with(values, kernel.weights(), h, fft)
            }
        }
        Backend::DirectTaps => {
            let taps = kernel.power_taps(h);
            (0..out_len)
                .map(|c| taps.iter().enumerate().map(|(m, &w)| w * values[c + m]).sum())
                // amopt-lint: allow(hot-path-alloc) -- ablation backend; the collect is the output row the caller keeps
                .collect()
        }
        Backend::Stepped => stepped(values, kernel, h),
    };
    debug_assert_eq!(out.len(), out_len);
    Segment::new(start, out)
}

fn stepped(row: &[f64], kernel: &StencilKernel, h: u64) -> Vec<f64> {
    let mut cur = row.to_vec();
    for _ in 0..h {
        cur = kernel.step(&cur);
    }
    cur
}

/// Evolves a periodic grid (cells wrap cyclically) by `h` steps.
///
/// This is the `O(N log N)` periodic-grid case of Ahmad et al. \[1\]; grid
/// sizes need not be powers of two.
pub fn advance_periodic(
    values: &[f64],
    kernel: &StencilKernel,
    h: u64,
    backend: Backend,
) -> Vec<f64> {
    if values.is_empty() || h == 0 {
        return values.to_vec();
    }
    match backend {
        Backend::Fft => {
            // The spectral path needs the taps aligned to the anchor: the
            // correlation primitive assumes tap 0 sits at offset 0, so the
            // result must be rotated by `h·anchor`.
            let raw = amopt_fft::correlate_power_periodic(values, kernel.weights(), h);
            rotate_by(raw, kernel.anchor() * h as i64)
        }
        Backend::DirectTaps => {
            let taps = kernel.power_taps(h);
            let n = values.len();
            let base = kernel.anchor() * h as i64;
            (0..n as i64)
                .map(|c| {
                    taps.iter()
                        .enumerate()
                        .map(|(m, &w)| w * values[wrap(c + base + m as i64, n)])
                        .sum()
                })
                .collect()
        }
        Backend::Stepped => {
            let n = values.len();
            let mut cur = values.to_vec();
            for _ in 0..h {
                cur = (0..n as i64)
                    .map(|c| {
                        kernel
                            .weights()
                            .iter()
                            .enumerate()
                            .map(|(m, &w)| w * cur[wrap(c + kernel.anchor() + m as i64, n)])
                            .sum()
                    })
                    .collect();
            }
            cur
        }
    }
}

#[inline]
fn wrap(idx: i64, n: usize) -> usize {
    idx.rem_euclid(n as i64) as usize
}

/// Cyclic rotation so that output index `c` reads `raw[(c + shift) mod n]`.
fn rotate_by(raw: Vec<f64>, shift: i64) -> Vec<f64> {
    let n = raw.len();
    if n == 0 || shift.rem_euclid(n as i64) == 0 {
        return raw;
    }
    (0..n as i64).map(|c| raw[wrap(c + shift, n)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(31);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| next()).collect()
    }

    fn assert_close(a: &Segment, b: &Segment, tol: f64, ctx: &str) {
        assert_eq!(a.start, b.start, "{ctx}: start mismatch");
        assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() <= tol, "{ctx}: {x} vs {y}");
        }
    }

    #[test]
    fn backends_agree_right_leaning() {
        let kernel = StencilKernel::new(vec![0.49, 0.5], 0);
        let seg = Segment::new(10, rand_real(300, 1));
        for h in [1u64, 2, 17, 100] {
            let f = advance(&seg, &kernel, h, Backend::Fft);
            let d = advance(&seg, &kernel, h, Backend::DirectTaps);
            let s = advance(&seg, &kernel, h, Backend::Stepped);
            assert_close(&f, &s, 1e-9, &format!("fft vs stepped h={h}"));
            assert_close(&d, &s, 1e-9, &format!("direct vs stepped h={h}"));
            assert_eq!(f.start, 10);
            assert_eq!(f.len(), 300 - h as usize);
        }
    }

    #[test]
    fn backends_agree_centered() {
        let kernel = StencilKernel::new(vec![0.3, 0.35, 0.3], -1);
        let seg = Segment::new(-50, rand_real(220, 2));
        for h in [1u64, 8, 50] {
            let f = advance(&seg, &kernel, h, Backend::Fft);
            let s = advance(&seg, &kernel, h, Backend::Stepped);
            assert_close(&f, &s, 1e-9, &format!("h={h}"));
            // symmetric kernel with anchor −1: both ends shrink by h
            assert_eq!(f.start, -50 + h as i64);
            assert_eq!(f.len(), 220 - 2 * h as usize);
        }
    }

    #[test]
    fn trinomial_right_cone_geometry() {
        let kernel = StencilKernel::new(vec![0.3, 0.33, 0.3], 0);
        let seg = Segment::new(0, rand_real(101, 3));
        let out = advance(&seg, &kernel, 7, Backend::Fft);
        assert_eq!(out.start, 0);
        assert_eq!(out.len(), 101 - 14);
    }

    #[test]
    fn h_zero_is_identity() {
        let kernel = StencilKernel::new(vec![0.5, 0.5], 0);
        let seg = Segment::new(3, rand_real(10, 4));
        let out = advance(&seg, &kernel, 0, Backend::Fft);
        assert_close(&out, &seg, 0.0, "identity");
    }

    #[test]
    fn composition_of_advances_equals_single_advance() {
        // advance(h1) ∘ advance(h2) == advance(h1+h2) — the property the
        // trapezoid recursion is built on.
        let kernel = StencilKernel::new(vec![0.2, 0.5, 0.28], -1);
        let seg = Segment::new(0, rand_real(400, 5));
        let once = advance(&seg, &kernel, 60, Backend::Fft);
        let mid = advance(&seg, &kernel, 25, Backend::Fft);
        let twice = advance(&mid, &kernel, 35, Backend::Fft);
        assert_close(&once, &twice, 1e-8, "composition");
    }

    #[test]
    fn periodic_backends_agree() {
        let kernel = StencilKernel::new(vec![0.25, 0.5, 0.24], -1);
        for n in [9usize, 32, 100] {
            let vals = rand_real(n, n as u64);
            for h in [1u64, 3, 11] {
                let f = advance_periodic(&vals, &kernel, h, Backend::Fft);
                let d = advance_periodic(&vals, &kernel, h, Backend::DirectTaps);
                let s = advance_periodic(&vals, &kernel, h, Backend::Stepped);
                for i in 0..n {
                    assert!((f[i] - s[i]).abs() < 1e-8, "fft vs stepped n={n} h={h} i={i}");
                    assert!((d[i] - s[i]).abs() < 1e-8, "direct vs stepped n={n} h={h} i={i}");
                }
            }
        }
    }

    #[test]
    fn periodic_conserves_mass_for_stochastic_kernels() {
        // Row sum is multiplied by (Σw)^h on a periodic grid.
        let kernel = StencilKernel::new(vec![0.2, 0.5, 0.3], -1);
        let vals = rand_real(64, 9);
        let total: f64 = vals.iter().sum();
        let out = advance_periodic(&vals, &kernel, 20, Backend::Fft);
        let got: f64 = out.iter().sum();
        assert!((got - total).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "cannot be advanced")]
    fn advance_rejects_cone_overflow() {
        let kernel = StencilKernel::new(vec![0.5, 0.5], 0);
        let seg = Segment::new(0, vec![1.0; 5]);
        advance(&seg, &kernel, 5, Backend::Fft);
    }
}
