//! Linear stencil advance against an absorbing (Dirichlet-zero) wall — the
//! *aperiodic grid* case of Ahmad et al. \[1\], specialised to one wall.
//!
//! Cells at or beyond the wall column hold zero at every time step (an
//! absorbing boundary, e.g. a knocked-out barrier option).  Away from the
//! wall the update is the plain linear stencil, so cells whose dependency
//! cone clears the wall advance with one FFT correlation; the `h` cells
//! hugging the wall are resolved by recursion on a window of half height —
//! the same divide-and-conquer shape as the nonlinear engines, but with a
//! *known* boundary, hence no tracking.  Work `O((n + h log h)·log h)`,
//! matching \[1\]'s aperiodic bound for `n = Θ(h)`.
//!
//! Only symmetric 3-point kernels (anchor −1) are supported — that is what
//! the barrier pricers need; the right side of the segment behaves like the
//! ordinary valid-mode cone.

use crate::advance::{advance, Backend};
use crate::kernel::StencilKernel;
use crate::segment::Segment;

/// Advances `seg` by `h` steps with an absorbing wall just left of the
/// segment: conceptually `value(wall) = 0` forever, where
/// `wall = seg.start − 1`.
///
/// Output covers `[seg.start, seg.end() − 1 − h]` (the right edge shrinks
/// like a valid-mode cone; the left edge is pinned by the wall).
///
/// # Panics
/// If the kernel is not a 3-point stencil anchored at −1 or the segment is
/// too short for `h` steps.
pub fn advance_left_wall(
    seg: &Segment,
    kernel: &StencilKernel,
    h: u64,
    backend: Backend,
) -> Segment {
    // amopt-lint: hot-path
    assert_eq!(kernel.anchor(), -1, "wall advance requires anchor −1");
    assert_eq!(kernel.span(), 2, "wall advance requires a 3-point kernel");
    assert!(
        seg.len() as u64 > h,
        "segment of {} cells cannot host {h} wall-bounded steps",
        seg.len()
    );
    let wall = seg.start - 1;
    // amopt-lint: allow(hot-path-alloc) -- one working copy per call; subsequent rows replace it via the stitch
    let mut cur = seg.clone();
    let mut remaining = h;
    while remaining > 0 {
        let hi = cur.end() - 1;
        let width = hi - wall; // stored cells
        if remaining <= BASE_CUTOFF {
            cur = stepped_wall(&cur, kernel, remaining);
            break;
        }
        let h1 = (remaining / 2).min(((width - 1) / 2).max(1) as u64);
        if h1 == 0 {
            cur = stepped_wall(&cur, kernel, remaining.min(BASE_CUTOFF));
            remaining -= remaining.min(BASE_CUTOFF);
            continue;
        }
        // Interior: cells ≥ wall+1+h1 have cones clear of the wall.
        let interior = advance(&cur, kernel, h1, backend);
        debug_assert_eq!(interior.start, cur.start + h1 as i64);
        // Wall window: cells [wall+1, wall+h1] need input [wall+1, wall+2h1];
        // h1 ≤ (width−1)/2 guarantees the window fits the stored cells.
        let window_hi = wall + 2 * h1 as i64;
        debug_assert!(window_hi <= hi);
        let sub = advance_left_wall(&cur.extract(cur.start, window_hi), kernel, h1, backend);
        debug_assert_eq!(sub.len() as u64, h1);
        // Stitch: wall-adjacent cells from the recursion, the rest from the
        // interior FFT (they are exactly adjacent).
        let mut values = sub.values;
        values.extend_from_slice(&interior.values);
        cur = Segment::new(cur.start, values);
        remaining -= h1;
    }
    cur
}

const BASE_CUTOFF: u64 = 8;

/// Reference semantics: one explicit row per step, reading zero at the wall.
pub fn stepped_wall(seg: &Segment, kernel: &StencilKernel, h: u64) -> Segment {
    let w = kernel.weights();
    debug_assert_eq!(kernel.anchor(), -1);
    let wall = seg.start - 1;
    let mut cur = seg.clone();
    for _ in 0..h {
        let mut next = Vec::with_capacity(cur.len().saturating_sub(1));
        for c in cur.start..cur.end() - 1 {
            let left = if c - 1 <= wall { 0.0 } else { cur.get(c - 1) };
            next.push(w[0] * left + w[1] * cur.get(c) + w[2] * cur.get(c + 1));
        }
        cur = Segment::new(seg.start, next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> StencilKernel {
        StencilKernel::new(vec![0.3, 0.38, 0.3], -1)
    }

    fn rand_vals(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(77);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_stepped_reference() {
        let k = kernel();
        for (n, h) in [(50usize, 10u64), (200, 64), (400, 150), (31, 9)] {
            let seg = Segment::new(5, rand_vals(n, n as u64));
            let fast = advance_left_wall(&seg, &k, h, Backend::Fft);
            let slow = stepped_wall(&seg, &k, h);
            assert_eq!(fast.start, slow.start, "n={n} h={h}");
            assert_eq!(fast.len(), slow.len(), "n={n} h={h}");
            for i in 0..fast.len() {
                assert!(
                    (fast.values[i] - slow.values[i]).abs() < 1e-9,
                    "n={n} h={h} i={i}: {} vs {}",
                    fast.values[i],
                    slow.values[i]
                );
            }
        }
    }

    #[test]
    fn wall_absorbs_mass() {
        // With a conservative kernel, mass leaks only through the wall (and
        // the shrinking right edge); values stay bounded and non-negative
        // for a non-negative start.
        let k = StencilKernel::new(vec![0.25, 0.5, 0.25], -1);
        let seg = Segment::new(0, vec![1.0; 300]);
        let out = advance_left_wall(&seg, &k, 100, Backend::Fft);
        for &v in &out.values {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        // The wall-adjacent cell has lost the most.
        assert!(out.values[0] < out.values[out.len() - 1]);
    }

    #[test]
    fn absorbing_wall_reduces_values_vs_free_space() {
        let k = kernel();
        let vals = vec![1.0; 200];
        let walled = advance_left_wall(&Segment::new(0, vals.clone()), &k, 40, Backend::Fft);
        // Free-space evolution of the same row, restricted to the same cells.
        let free =
            advance(&Segment::new(-60, [vec![1.0; 60], vals].concat()), &k, 40, Backend::Fft);
        for c in walled.start..walled.end() {
            assert!(walled.get(c) <= free.get(c) + 1e-12, "col {c}");
        }
    }

    #[test]
    fn single_step_equals_manual() {
        let k = kernel();
        let seg = Segment::new(10, vec![2.0, 4.0, 8.0]);
        let out = advance_left_wall(&seg, &k, 1, Backend::Fft);
        let w = k.weights();
        // Cell 10 reads wall (0), itself, right neighbor.
        assert!((out.get(10) - (w[0] * 0.0 + w[1] * 2.0 + w[2] * 4.0)).abs() < 1e-15);
        assert!((out.get(11) - (w[0] * 2.0 + w[1] * 4.0 + w[2] * 8.0)).abs() < 1e-15);
    }
}
