//! # amopt-stencil — linear 1-D stencil engine
//!
//! Implements the linear-stencil substrate the paper builds on (Ahmad et al.,
//! *Fast stencil computations using fast Fourier transforms*, SPAA 2021 —
//! reference \[1\] of the PPoPP 2024 paper):
//!
//! * [`StencilKernel`] — one linear time step (taps + anchor offset);
//! * [`Segment`] — row values anchored at an absolute column;
//! * [`advance()`](advance::advance) — `h`-step aperiodic evolution returning the valid cone
//!   interior, with FFT (`O(L log L)`), direct-taps, and stepped backends;
//! * [`advance_periodic`] — `O(N log N)` periodic-grid evolution for
//!   arbitrary `N` (Bluestein).
//!
//! The *nonlinear* stencils of the paper (`max(linear, obstacle)`) live in
//! `amopt-core`; they call into this crate on regions certified to be free of
//! the obstacle.

#![forbid(unsafe_code)]

pub mod advance;
pub mod bounded;
pub mod kernel;
pub mod segment;

pub use advance::{
    advance, advance_periodic, advance_values_with, output_start, valid_output_len, with_scratch,
    AdvanceScratch, Backend,
};
pub use bounded::{advance_left_wall, stepped_wall};
pub use kernel::StencilKernel;
pub use segment::Segment;
