//! A row segment: contiguous cell values anchored at an absolute column.
//!
//! The pricing grids use absolute column coordinates (`i64`, since the BSM
//! grid is centred on zero and extends to negative log-price indices).  A
//! `Segment` couples a value buffer with the column of its first cell so the
//! geometric reasoning of the trapezoid algorithms stays readable.

/// Values over the half-open absolute column range `[start, start + len)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Segment {
    /// Absolute column of `values[0]`.
    pub start: i64,
    /// Cell values.
    pub values: Vec<f64>,
}

impl Segment {
    /// Creates a segment with `values[0]` at absolute column `start`.
    pub fn new(start: i64, values: Vec<f64>) -> Self {
        Segment { start, values }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the segment holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// One past the last absolute column.
    #[inline]
    pub fn end(&self) -> i64 {
        self.start + self.values.len() as i64
    }

    /// Last absolute column (inclusive); panics on empty segments.
    #[inline]
    pub fn last_col(&self) -> i64 {
        assert!(!self.is_empty(), "empty segment has no last column");
        self.end() - 1
    }

    /// Whether absolute column `col` lies inside the segment.
    #[inline]
    pub fn contains(&self, col: i64) -> bool {
        col >= self.start && col < self.end()
    }

    /// Value at absolute column `col`.
    ///
    /// # Panics
    /// If `col` is outside the segment.
    #[inline]
    pub fn get(&self, col: i64) -> f64 {
        debug_assert!(self.contains(col), "column {col} outside [{}, {})", self.start, self.end());
        self.values[(col - self.start) as usize]
    }

    /// Mutable value at absolute column `col`.
    #[inline]
    pub fn get_mut(&mut self, col: i64) -> &mut f64 {
        debug_assert!(self.contains(col), "column {col} outside [{}, {})", self.start, self.end());
        let i = (col - self.start) as usize;
        &mut self.values[i]
    }

    /// Borrow of the value slice covering absolute columns `[lo, hi]`
    /// (inclusive on both ends).
    pub fn slice(&self, lo: i64, hi: i64) -> &[f64] {
        assert!(
            lo >= self.start && hi < self.end() && lo <= hi + 1,
            "range [{lo}, {hi}] outside segment [{}, {})",
            self.start,
            self.end()
        );
        &self.values[(lo - self.start) as usize..=(hi - self.start) as usize]
    }

    /// Sub-segment copy covering absolute columns `[lo, hi]` inclusive.
    pub fn extract(&self, lo: i64, hi: i64) -> Segment {
        Segment::new(lo, self.slice(lo, hi).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_bookkeeping() {
        let s = Segment::new(-3, vec![10.0, 11.0, 12.0, 13.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.end(), 1);
        assert_eq!(s.last_col(), 0);
        assert!(s.contains(-3) && s.contains(0) && !s.contains(1) && !s.contains(-4));
        assert_eq!(s.get(-3), 10.0);
        assert_eq!(s.get(0), 13.0);
    }

    #[test]
    fn slice_and_extract() {
        let s = Segment::new(5, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.slice(6, 7), &[2.0, 3.0]);
        let e = s.extract(6, 8);
        assert_eq!(e.start, 6);
        assert_eq!(e.values, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn get_mut_writes_through() {
        let mut s = Segment::new(0, vec![0.0; 3]);
        *s.get_mut(2) = 9.0;
        assert_eq!(s.values[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        Segment::new(0, vec![1.0]).slice(0, 1);
    }
}
