//! Linear 1-D stencil kernels.
//!
//! A kernel describes one time step of a linear stencil:
//!
//! `out[c] = Σ_m weights[m] · in[c + anchor + m]`
//!
//! `anchor` is the column offset of the first tap relative to the output
//! cell.  The three pricing models of the paper use:
//!
//! | model | weights               | anchor | cone                |
//! |-------|-----------------------|--------|---------------------|
//! | BOPM  | `[m(1−p), m·p]`       | 0      | leans right         |
//! | TOPM  | `[m·p_d, m·p_o, m·p_u]`| 0     | leans right, slope 2|
//! | BSM   | `[b, c, a]`           | −1     | symmetric           |

use amopt_fft::{kernel_power_taps, linear_convolve, power_kernel_len};

/// One time step of a linear 1-D stencil.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilKernel {
    weights: Vec<f64>,
    anchor: i64,
}

impl StencilKernel {
    /// Creates a kernel from taps and the offset of the first tap.
    ///
    /// # Panics
    /// If `weights` is empty or contains non-finite values.
    pub fn new(weights: Vec<f64>, anchor: i64) -> Self {
        assert!(!weights.is_empty(), "stencil kernel needs at least one tap");
        assert!(weights.iter().all(|w| w.is_finite()), "stencil kernel taps must be finite");
        StencilKernel { weights, anchor }
    }

    /// Taps in column order.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Offset of the first tap relative to the output cell.
    #[inline]
    pub fn anchor(&self) -> i64 {
        self.anchor
    }

    /// Number of taps minus one: how much the dependency cone widens per step.
    #[inline]
    pub fn span(&self) -> usize {
        self.weights.len() - 1
    }

    /// Column offset of the last tap relative to the output cell.
    #[inline]
    pub fn hi_offset(&self) -> i64 {
        self.anchor + self.span() as i64
    }

    /// `Σ|w|` — the ℓ¹ norm; `≤ 1` guarantees numerically stable powering.
    pub fn l1_norm(&self) -> f64 {
        self.weights.iter().map(|w| w.abs()).sum()
    }

    /// Applies a single step to `row`, returning the valid cells.
    /// The output corresponds to input columns shifted by `anchor` (the
    /// caller tracks absolute positions; see [`crate::segment::Segment`]).
    pub fn step(&self, row: &[f64]) -> Vec<f64> {
        let span = self.span();
        assert!(row.len() > span, "row of {} cells is too short for span {span}", row.len());
        (0..row.len() - span)
            .map(|c| self.weights.iter().enumerate().map(|(m, &w)| w * row[c + m]).sum())
            .collect()
    }

    /// Taps of the `h`-fold self-convolution `kernel^{⊛h}` via FFT powering.
    pub fn power_taps(&self, h: u64) -> Vec<f64> {
        kernel_power_taps(&self.weights, h)
    }

    /// Same taps computed by repeated linear convolution — `O(h²·span²)`
    /// reference implementation for tests and the ablation backend.
    pub fn power_taps_direct(&self, h: u64) -> Vec<f64> {
        let mut taps = vec![1.0];
        for _ in 0..h {
            taps = linear_convolve(&taps, &self.weights);
        }
        taps
    }

    /// Tap count of `kernel^{⊛h}`.
    #[inline]
    pub fn power_len(&self, h: u64) -> usize {
        power_kernel_len(self.weights.len(), h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let k = StencilKernel::new(vec![0.25, 0.5, 0.25], -1);
        assert_eq!(k.span(), 2);
        assert_eq!(k.anchor(), -1);
        assert_eq!(k.hi_offset(), 1);
        assert!((k.l1_norm() - 1.0).abs() < 1e-15);
        assert_eq!(k.power_len(3), 7);
    }

    #[test]
    fn step_matches_hand_computation() {
        let k = StencilKernel::new(vec![2.0, 3.0], 0);
        let out = k.step(&[1.0, 10.0, 100.0]);
        assert_eq!(out, vec![32.0, 320.0]);
    }

    #[test]
    fn power_taps_fft_vs_direct() {
        let k = StencilKernel::new(vec![0.2, 0.45, 0.3], -1);
        for h in [0u64, 1, 2, 5, 16, 40] {
            let a = k.power_taps(h);
            let b = k.power_taps_direct(h);
            assert_eq!(a.len(), b.len(), "h={h}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-11, "h={h}");
            }
        }
    }

    #[test]
    fn power_taps_mass_conservation() {
        // Σ taps of kernel^{⊛h} = (Σ kernel)^h.
        let k = StencilKernel::new(vec![0.3, 0.4, 0.28], 0);
        let total: f64 = k.weights().iter().sum();
        for h in [1u64, 7, 33] {
            let sum: f64 = k.power_taps(h).iter().sum();
            assert!((sum - total.powi(h as i32)).abs() < 1e-10, "h={h}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn rejects_empty() {
        StencilKernel::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        StencilKernel::new(vec![0.5, f64::NAN], 0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn step_rejects_short_rows() {
        StencilKernel::new(vec![1.0, 1.0, 1.0], 0).step(&[1.0, 2.0]);
    }
}
