//! Property-based tests for the linear stencil engine: all backends agree on
//! arbitrary kernels/segments, and advancement composes.

use amopt_stencil::{advance, advance_periodic, Backend, Segment, StencilKernel};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = StencilKernel> {
    (prop::collection::vec(0.01..0.45f64, 2..4), -2i64..=1)
        .prop_map(|(w, anchor)| StencilKernel::new(w, anchor))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_agree_on_random_inputs(
        kernel in arb_kernel(),
        values in prop::collection::vec(-5.0..5.0f64, 60..250),
        start in -100i64..100,
        h in 1u64..15,
    ) {
        prop_assume!(values.len() > kernel.span() * h as usize + 1);
        let seg = Segment::new(start, values);
        let f = advance(&seg, &kernel, h, Backend::Fft);
        let d = advance(&seg, &kernel, h, Backend::DirectTaps);
        let s = advance(&seg, &kernel, h, Backend::Stepped);
        prop_assert_eq!(f.start, s.start);
        prop_assert_eq!(d.start, s.start);
        prop_assert_eq!(f.len(), s.len());
        for i in 0..f.len() {
            prop_assert!((f.values[i] - s.values[i]).abs() < 1e-8);
            prop_assert!((d.values[i] - s.values[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn advancement_composes(
        kernel in arb_kernel(),
        values in prop::collection::vec(-5.0..5.0f64, 120..300),
        h1 in 1u64..10,
        h2 in 1u64..10,
    ) {
        prop_assume!(values.len() > kernel.span() * (h1 + h2) as usize + 1);
        let seg = Segment::new(0, values);
        let once = advance(&seg, &kernel, h1 + h2, Backend::Fft);
        let mid = advance(&seg, &kernel, h1, Backend::Fft);
        let twice = advance(&mid, &kernel, h2, Backend::Fft);
        prop_assert_eq!(once.start, twice.start);
        prop_assert_eq!(once.len(), twice.len());
        for i in 0..once.len() {
            prop_assert!((once.values[i] - twice.values[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn output_geometry_is_exact(
        kernel in arb_kernel(),
        len in 50usize..200,
        start in -50i64..50,
        h in 1u64..12,
    ) {
        prop_assume!(len > kernel.span() * h as usize + 1);
        let seg = Segment::new(start, vec![1.0; len]);
        let out = advance(&seg, &kernel, h, Backend::Fft);
        prop_assert_eq!(out.start, start - kernel.anchor() * h as i64);
        prop_assert_eq!(out.len(), len - kernel.span() * h as usize);
    }

    #[test]
    fn periodic_backends_agree(
        kernel in arb_kernel(),
        values in prop::collection::vec(-5.0..5.0f64, 5..64),
        h in 1u64..10,
    ) {
        prop_assume!(kernel.weights().len() <= values.len());
        let f = advance_periodic(&values, &kernel, h, Backend::Fft);
        let s = advance_periodic(&values, &kernel, h, Backend::Stepped);
        for i in 0..values.len() {
            prop_assert!((f[i] - s[i]).abs() < 1e-8, "i={}: {} vs {}", i, f[i], s[i]);
        }
    }
}
