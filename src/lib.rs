//! # american-option-pricing
//!
//! Fast American option pricing using nonlinear stencils — a Rust
//! reproduction of Ahmad, Browne, Chowdhury, Das, Huang & Zhu (PPoPP 2024).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`fft`] — from-scratch FFT substrate (radix-2, Bluestein, real packing,
//!   kernel-power correlation);
//! * [`parallel`] — fork-join facade (rayon-backed, sequential fallback);
//! * [`stencil`] — linear 1-D stencil engine (Ahmad et al., SPAA 2021);
//! * [`core`] — the paper's contribution: nonlinear-stencil trapezoid
//!   engines and the BOPM/TOPM/BSM pricers with naive, tiled,
//!   cache-oblivious, and FFT implementations, plus greeks, implied vol,
//!   Bermudan options, exercise-boundary extraction, and the batch pricing
//!   subsystem (`core::batch`: dedup + sharded memo + parallel fan-out over
//!   heterogeneous books, batch-native greeks ladders, and lockstep
//!   implied-vol surface inversion);
//! * [`service`] — the batch-coalescing quote service: a bounded
//!   earliest-deadline-first submission queue with deadline/size coalescing,
//!   backpressure, and a line-JSON TCP front end (single-threaded epoll
//!   reactor by default, thread-per-connection baseline behind a config
//!   switch), turning independent incoming quotes into `BatchPricer`
//!   batches;
//! * [`cachesim`] — cache-hierarchy and energy simulation (the PAPI/RAPL
//!   substitute used to regenerate the paper's Figures 6/7/10).
//!
//! ## Quick start
//!
//! ```
//! use american_option_pricing::prelude::*;
//!
//! let params = OptionParams::paper_defaults();
//! let model = BopmModel::new(params, 1024).unwrap();
//! let price = bopm_fast::price_american_call(&model, &EngineConfig::default());
//! assert!((price - 8.32).abs() < 0.05);
//! ```
//!
//! Derived quantities route through the batch layer — greeks ladders and
//! implied-vol surfaces fan out through one [`BatchPricer`](prelude::BatchPricer):
//!
//! ```
//! use american_option_pricing::prelude::*;
//!
//! let pricer = BatchPricer::new(EngineConfig::default());
//! let req = PricingRequest::american(
//!     ModelKind::Bopm,
//!     OptionType::Call,
//!     OptionParams::paper_defaults(),
//!     256,
//! );
//! let g: Greeks = batch_greeks(&pricer, std::slice::from_ref(&req)).remove(0).unwrap();
//! assert!(g.delta > 0.0 && g.vega > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use amopt_cachesim as cachesim;
pub use amopt_core as core;
pub use amopt_fft as fft;
pub use amopt_parallel as parallel;
pub use amopt_service as service;
pub use amopt_stencil as stencil;

/// Most-used items in one import.
pub mod prelude {
    pub use amopt_core::batch::boundary::{exercise_boundaries, BoundaryRequest};
    pub use amopt_core::batch::greeks::greeks as batch_greeks;
    pub use amopt_core::batch::surface::{implied_vol_surface, VolQuote};
    pub use amopt_core::batch::{self, BatchPricer, MemoStats, ModelKind, PricingRequest};
    pub use amopt_core::bopm::{fast as bopm_fast, naive as bopm_naive, BopmModel};
    pub use amopt_core::bsm::{fast as bsm_fast, naive as bsm_naive, BsmModel};
    pub use amopt_core::greeks::{greeks_by_fd, Greeks};
    pub use amopt_core::topm::{fast as topm_fast, naive as topm_naive, TopmModel};
    pub use amopt_core::{
        analytic, bermudan, exercise_boundary, greeks, implied_vol, EngineConfig, ExerciseStyle,
        OptionParams, OptionType, PricingError,
    };
    pub use amopt_service::{
        FrontEnd, QuoteServer, QuoteService, ServiceConfig, ServiceError, ServiceRequest,
        ServiceResponse, ServiceStats, TcpQuoteClient,
    };
}
