//! Property-based tests: the fast pricers must agree with the naive
//! references for *arbitrary* admissible market parameters, and the core
//! invariants must hold across the whole parameter space.

use american_option_pricing::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = OptionParams> {
    (
        10.0..500.0f64, // spot
        10.0..500.0f64, // strike
        0.0..0.10f64,   // rate
        0.05..0.8f64,   // volatility
        0.0..0.10f64,   // dividend yield
        0.1..3.0f64,    // expiry
    )
        .prop_map(|(spot, strike, rate, volatility, dividend_yield, expiry)| OptionParams {
            spot,
            strike,
            rate,
            volatility,
            dividend_yield,
            expiry,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bopm_fast_matches_naive_on_random_params(p in arb_params(), steps in 16usize..600) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        let m = BopmModel::new(p, steps).unwrap();
        let fast = bopm_fast::price_american_call(&m, &EngineConfig::default());
        let naive = bopm_naive::price(
            &m, OptionType::Call, ExerciseStyle::American, bopm_naive::ExecMode::Serial);
        prop_assert!(
            (fast - naive).abs() < 1e-8 * naive.abs().max(1.0) + 1e-12 * p.strike,
            "fast {} vs naive {}", fast, naive
        );
    }

    #[test]
    fn topm_fast_matches_naive_on_random_params(p in arb_params(), steps in 16usize..400) {
        prop_assume!(TopmModel::new(p, steps).is_ok());
        let m = TopmModel::new(p, steps).unwrap();
        let fast = topm_fast::price_american_call(&m, &EngineConfig::default());
        let naive = topm_naive::price(
            &m, OptionType::Call, ExerciseStyle::American, topm_naive::ExecMode::Serial);
        prop_assert!(
            (fast - naive).abs() < 1e-8 * naive.abs().max(1.0) + 1e-12 * p.strike,
            "fast {} vs naive {}", fast, naive
        );
    }

    #[test]
    fn bsm_fast_matches_naive_on_random_params(p in arb_params(), steps in 16usize..400) {
        let p = OptionParams { dividend_yield: 0.0, ..p };
        prop_assume!(BsmModel::new(p, steps).is_ok());
        let m = BsmModel::new(p, steps).unwrap();
        let fast = bsm_fast::price_american_put(&m, &EngineConfig::default());
        let naive = bsm_naive::price_american_put(&m, bsm_naive::ExecMode::Serial);
        prop_assert!(
            (fast - naive).abs() < 1e-8 * naive.abs().max(1.0) + 1e-12 * p.strike,
            "fast {} vs naive {}", fast, naive
        );
    }

    #[test]
    fn american_dominates_european_and_intrinsic(p in arb_params(), steps in 16usize..300) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        let m = BopmModel::new(p, steps).unwrap();
        let am = bopm_fast::price_american_call(&m, &EngineConfig::default());
        let eu = american_option_pricing::core::bopm::european::price_european_fft(
            &m, OptionType::Call);
        let intrinsic = (p.spot - p.strike).max(0.0);
        prop_assert!(am >= eu - 1e-8 * eu.abs().max(1.0), "am {} < eu {}", am, eu);
        prop_assert!(am >= intrinsic - 1e-8 * p.strike, "am {} < intrinsic {}", am, intrinsic);
        // And below the spot (a call never exceeds the asset).
        prop_assert!(am <= p.spot * (1.0 + 1e-9));
    }

    #[test]
    fn put_call_parity_on_random_lattices(p in arb_params(), steps in 32usize..500) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        let m = BopmModel::new(p, steps).unwrap();
        let call = american_option_pricing::core::bopm::european::price_european_fft(
            &m, OptionType::Call);
        let put = american_option_pricing::core::bopm::european::price_european_fft(
            &m, OptionType::Put);
        let rhs = p.spot * (-p.dividend_yield * p.expiry).exp()
            - p.strike * (-p.rate * p.expiry).exp();
        prop_assert!(
            (call - put - rhs).abs() < 1e-7 * p.strike.max(p.spot),
            "parity violated: {} vs {}", call - put, rhs
        );
    }

    #[test]
    fn boundary_drift_invariant_on_random_lattices(p in arb_params(), steps in 32usize..300) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        let m = BopmModel::new(p, steps).unwrap();
        let (_, b) = bopm_naive::price_american_with_boundary(&m, OptionType::Call);
        for i in 0..steps {
            // Left-drift bound (Lemma 2.6) holds everywhere.
            prop_assert!(b[i] >= b[i + 1] - 1, "i={}", i);
            // Rightward monotonicity (Cor. 2.7 / Lemma 2.4) relies on
            // Lemma 2.3, which needs the row i+1 to have children — it can
            // genuinely fail at the expiry transition i+1 = T when
            // (1−e^{−RΔt}) > (1−e^{−YΔt})·u² (e.g. Y = 0); see DESIGN.md
            // errata and bopm::fast's explicit first step.
            if i + 1 < steps {
                prop_assert!(b[i] <= b[i + 1] || b[i + 1] >= i as i64, "i={}", i);
            }
        }
    }
}
