//! End-to-end tests of the quote service: concurrent books over TCP must be
//! bitwise-identical to direct `BatchPricer` pricing, and over-capacity
//! bursts must shed load explicitly without panics, deadlocks, or dropped
//! in-flight responses.

use american_option_pricing::prelude::*;
use american_option_pricing::service::wire;
use std::time::Duration;

fn base() -> OptionParams {
    OptionParams::paper_defaults()
}

/// A deterministic mixed book: strike ladder × maturities × {BOPM, TOPM} ×
/// {call, put}, with some duplicates (every fourth contract repeats).
fn mixed_book(n: usize, steps: usize) -> Vec<PricingRequest> {
    (0..n)
        .map(|i| {
            let k = if i % 4 == 3 { i - 1 } else { i }; // duplicate every 4th
            let params = OptionParams {
                strike: 90.0 + 2.0 * (k % 32) as f64,
                expiry: 0.5 + 0.25 * ((k / 32) % 4) as f64,
                ..base()
            };
            let model = if k % 2 == 0 { ModelKind::Bopm } else { ModelKind::Topm };
            let ty = if (k / 2) % 2 == 0 { OptionType::Call } else { OptionType::Put };
            PricingRequest::american(model, ty, params, steps)
        })
        .collect()
}

#[test]
fn concurrent_tcp_book_is_bitwise_identical_to_direct_batch_pricing() {
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let book = mixed_book(96, 96);

    // Direct reference: the whole book through one BatchPricer call.
    let direct = BatchPricer::new(EngineConfig::default());
    let want: Vec<f64> =
        direct.price_batch(&book).into_iter().map(|r| r.expect("valid book")).collect();

    // The same book split over 4 concurrent TCP connections, pipelined.
    let workers = 4;
    let chunk = book.len().div_ceil(workers);
    let got: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = book
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let slice = slice.to_vec();
                scope.spawn(move || {
                    let mut client = TcpQuoteClient::connect(addr).expect("connect");
                    for (i, req) in slice.iter().enumerate() {
                        let id = (w * chunk + i) as u64;
                        client.send(&wire::encode_pricing_request(id, "price", req)).unwrap();
                    }
                    let mut out = Vec::with_capacity(slice.len());
                    for _ in 0..slice.len() {
                        let reply = client.recv().expect("response line");
                        let doc = wire::parse(&reply).expect("valid response JSON");
                        assert_eq!(
                            doc.get("ok").and_then(|v| match v {
                                wire::JsonValue::Bool(b) => Some(*b),
                                _ => None,
                            }),
                            Some(true),
                            "{reply}"
                        );
                        let id = doc.get("id").unwrap().as_f64().unwrap() as usize;
                        let price = doc.get("price").unwrap().as_f64().unwrap();
                        out.push((id, price));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });

    let mut seen = vec![false; book.len()];
    for (id, price) in got.into_iter().flatten() {
        assert!(!seen[id], "response {id} delivered twice");
        seen[id] = true;
        assert_eq!(
            price.to_bits(),
            want[id].to_bits(),
            "request {id}: wire {price} vs direct {}",
            want[id]
        );
    }
    assert!(seen.iter().all(|&s| s), "every request must be answered exactly once");

    // The traffic actually coalesced: fewer batches than requests.
    let stats = server.service().stats();
    assert_eq!(stats.completed, book.len() as u64);
    assert!(
        stats.batches < stats.completed,
        "expected coalescing, got {} batches for {} requests",
        stats.batches,
        stats.completed
    );
    server.shutdown();
}

#[test]
fn overloaded_burst_sheds_explicitly_and_answers_every_accepted_request() {
    // Tiny queue + slow lattice work: a fast burst must overflow.
    let service = QuoteService::start(ServiceConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_depth: 8,
        workers: 1,
        per_conn_inflight: 1 << 20, // queue depth is the binding limit here
        ..ServiceConfig::default()
    })
    .expect("start service");
    let client = service.client();
    let burst = 256;
    let mut tickets = Vec::new();
    let mut overloaded = 0u64;
    for i in 0..burst {
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { strike: 80.0 + 0.5 * (i % 128) as f64, ..base() },
            512,
        );
        match client.submit(ServiceRequest::Price(req)) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { .. }) => overloaded += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(overloaded > 0, "a {burst}-deep burst into a depth-8 queue must shed load");
    let accepted = tickets.len() as u64;
    for t in tickets {
        t.wait().expect("accepted in-flight requests must all be answered");
    }
    let stats = service.stats();
    assert_eq!(stats.completed, accepted, "no in-flight response may be dropped");
    assert_eq!(stats.rejected_queue_full, overloaded);
    assert_eq!(stats.queue_depth, 0);
    service.shutdown();
}

#[test]
fn tcp_overload_answers_with_overloaded_error_lines_not_disconnects() {
    let server = QuoteServer::bind(
        "127.0.0.1:0",
        ServiceConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 4,
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = TcpQuoteClient::connect(server.local_addr()).unwrap();
    let burst = 128u64;
    for i in 0..burst {
        let req = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { strike: 80.0 + (i % 64) as f64, ..base() },
            512,
        );
        client.send(&wire::encode_pricing_request(i, "price", &req)).unwrap();
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..burst {
        let reply = client.recv().expect("an overloaded server must keep responding");
        let doc = wire::parse(&reply).unwrap();
        match doc.get("ok") {
            Some(wire::JsonValue::Bool(true)) => ok += 1,
            Some(wire::JsonValue::Bool(false)) => {
                assert_eq!(doc.get("kind").unwrap().as_str(), Some("overloaded"), "{reply}");
                shed += 1;
            }
            other => panic!("{other:?} in {reply}"),
        }
    }
    assert_eq!(ok + shed, burst);
    assert!(ok > 0, "some requests must get through");
    assert!(shed > 0, "a burst into a depth-4 queue must shed load");
    server.shutdown();
}

#[test]
fn greeks_and_surface_requests_ride_the_same_queue() {
    let service = QuoteService::start(ServiceConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(2),
        ..ServiceConfig::default()
    })
    .expect("start service");
    let client = service.client();
    let cfg = EngineConfig::default();
    let req = PricingRequest::american(ModelKind::Bopm, OptionType::Call, base(), 128);

    // Greeks through the service ≡ the serial facade (bitwise).
    let got = client.greeks(req.clone()).expect("greeks");
    let want = greeks_by_fd(&BatchPricer::new(cfg), &req).unwrap();
    assert_eq!(got.delta.to_bits(), want.delta.to_bits());
    assert_eq!(got.vega.to_bits(), want.vega.to_bits());

    // A put implied-vol quote through the service round-trips.
    let m = BopmModel::new(OptionParams { volatility: 0.3, ..base() }, 128).unwrap();
    let market = bopm_fast::price_american_put(&m, &cfg);
    let vol = client.implied_vol(VolQuote::put(base(), 128, market)).expect("inversion");
    assert!((vol - 0.3).abs() < 1e-6, "round-trip put vol {vol}");
    service.shutdown();
}
