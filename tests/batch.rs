//! Property tests for the batch pricing subsystem: a batch of one is
//! bitwise identical to the direct pricer call, duplicates are served from
//! the memo, and one bad request never poisons the rest of the batch.

use american_option_pricing::core as amopt_core;
use american_option_pricing::core::batch::Style;
use american_option_pricing::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = OptionParams> {
    (
        10.0..500.0f64, // spot
        10.0..500.0f64, // strike
        0.0..0.10f64,   // rate
        0.05..0.8f64,   // volatility
        0.0..0.10f64,   // dividend yield
        0.1..3.0f64,    // expiry
    )
        .prop_map(|(spot, strike, rate, volatility, dividend_yield, expiry)| OptionParams {
            spot,
            strike,
            rate,
            volatility,
            dividend_yield,
            expiry,
        })
}

/// One request per supported route, spanning every model family and style.
fn arb_request() -> impl Strategy<Value = PricingRequest> {
    (arb_params(), 16usize..240, 0usize..9).prop_map(|(p, steps, kind)| match kind {
        0 => PricingRequest::american(ModelKind::Bopm, OptionType::Call, p, steps),
        1 => PricingRequest::american(ModelKind::Bopm, OptionType::Put, p, steps),
        2 => PricingRequest::european(ModelKind::Bopm, OptionType::Put, p, steps),
        3 => PricingRequest::american(ModelKind::Topm, OptionType::Call, p, steps),
        4 => PricingRequest::european(ModelKind::Topm, OptionType::Call, p, steps),
        8 => PricingRequest::american(ModelKind::Topm, OptionType::Put, p, steps),
        5 => PricingRequest::american(
            ModelKind::Bsm,
            OptionType::Put,
            OptionParams { dividend_yield: 0.0, ..p },
            steps,
        ),
        6 => PricingRequest::european(
            ModelKind::Bsm,
            OptionType::Put,
            OptionParams { dividend_yield: 0.0, ..p },
            steps,
        ),
        _ => PricingRequest::bermudan_put(p, steps, vec![steps / 2, steps]),
    })
}

/// Independent oracle: prices `req` straight through the public facade, the
/// way a pre-batch caller would.
fn direct_price(req: &PricingRequest) -> Result<f64, PricingError> {
    let cfg = EngineConfig::default();
    match (req.model, req.option_type, &req.style) {
        (ModelKind::Bopm, OptionType::Call, Style::American) => {
            Ok(bopm_fast::price_american_call(&BopmModel::new(req.params, req.steps)?, &cfg))
        }
        (ModelKind::Bopm, OptionType::Put, Style::American) => {
            Ok(bopm_fast::price_american_put(&BopmModel::new(req.params, req.steps)?, &cfg))
        }
        (ModelKind::Topm, OptionType::Put, Style::American) => {
            Ok(topm_fast::price_american_put(&TopmModel::new(req.params, req.steps)?, &cfg))
        }
        (ModelKind::Bopm, opt, Style::European) => {
            let m = BopmModel::new(req.params, req.steps)?;
            Ok(amopt_core::bopm::european::price_european_fft(&m, opt))
        }
        (ModelKind::Bopm, OptionType::Put, Style::Bermudan(dates)) => {
            let m = BopmModel::new(req.params, req.steps)?;
            bermudan::price_bermudan_put_fft(&m, dates, cfg.backend)
        }
        (ModelKind::Topm, OptionType::Call, Style::American) => {
            Ok(topm_fast::price_american_call(&TopmModel::new(req.params, req.steps)?, &cfg))
        }
        (ModelKind::Topm, opt, Style::European) => {
            let m = TopmModel::new(req.params, req.steps)?;
            Ok(amopt_core::topm::european::price_european_fft(&m, opt))
        }
        (ModelKind::Bsm, OptionType::Put, Style::American) => {
            Ok(bsm_fast::price_american_put(&BsmModel::new(req.params, req.steps)?, &cfg))
        }
        (ModelKind::Bsm, OptionType::Put, Style::European) => {
            Ok(bsm_fast::price_european_put_fft(&BsmModel::new(req.params, req.steps)?))
        }
        other => panic!("strategy generated an unroutable request: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_of_one_is_bitwise_identical_to_the_direct_pricer(req in arb_request()) {
        let pricer = BatchPricer::new(EngineConfig::default());
        let got = pricer.price_one(&req);
        let want = direct_price(&req);
        match (got, want) {
            (Ok(g), Ok(w)) => prop_assert!(
                g.to_bits() == w.to_bits(),
                "{req:?}: batch {g} vs direct {w}"
            ),
            // Both paths must agree that the discretisation is unusable.
            (Err(_), Err(_)) => {}
            (got, want) => prop_assert!(false, "{req:?}: batch {got:?} vs direct {want:?}"),
        }
    }

    #[test]
    fn duplicate_requests_are_priced_once_and_hit_the_memo(
        req in arb_request(),
        copies in 2usize..12,
    ) {
        prop_assume!(direct_price(&req).is_ok());
        let pricer = BatchPricer::new(EngineConfig::default());
        let book = vec![req.clone(); copies];
        let first = pricer.price_batch(&book);
        let p0 = first[0].clone().unwrap();
        for r in &first {
            prop_assert_eq!(r.clone().unwrap().to_bits(), p0.to_bits());
        }
        // All copies collapsed to one unique pricing...
        let stats = pricer.memo_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.entries, 1);
        // ...and an unchanged re-quote is served from the memo.
        let second = pricer.price_batch(&book);
        prop_assert_eq!(second[0].clone().unwrap().to_bits(), p0.to_bits());
        prop_assert_eq!(pricer.memo_stats().hits, 1);
    }

    #[test]
    fn one_bad_request_never_poisons_the_batch(
        good in arb_request(),
        bad_spot in -50.0..0.0f64,
    ) {
        prop_assume!(direct_price(&good).is_ok());
        let pricer = BatchPricer::new(EngineConfig::default());
        let bad = PricingRequest::american(
            ModelKind::Bopm,
            OptionType::Call,
            OptionParams { spot: bad_spot, ..good.params },
            64,
        );
        let unsupported = PricingRequest::american(ModelKind::Bsm, OptionType::Call, good.params, 64);
        let book = vec![good.clone(), bad, good.clone(), unsupported, good.clone()];
        let out = pricer.price_batch(&book);
        prop_assert!(matches!(out[1], Err(PricingError::InvalidParams { .. })), "{:?}", out[1]);
        prop_assert!(matches!(out[3], Err(PricingError::Unsupported { .. })), "{:?}", out[3]);
        let want = direct_price(&good).unwrap();
        for idx in [0usize, 2, 4] {
            let got = out[idx].clone().unwrap();
            prop_assert!(got.to_bits() == want.to_bits(), "slot {idx}: {got} vs {want}");
        }
    }
}
