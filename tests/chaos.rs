//! Chaos soak: the whole service stack under a seeded hostile fault plan.
//!
//! One run drives a multi-connection client fleet through a seeded request
//! book against a server whose I/O, queue clock, and workers are all being
//! actively sabotaged by [`FaultPlan`], then checks the self-healing
//! invariants: every accepted request is answered exactly once, every
//! delivered `ok` reply is bitwise-identical to the fault-free reference
//! run, and the service returns to steady state (queue drained, full worker
//! complement alive).  The same seed must reproduce the same fault
//! schedule, pinned by the schedule hash.

use american_option_pricing::service::{soak, ChaosConfig, FaultPlan, FaultSite};

/// The standard seeded soak must pass with a meaningful fault volume
/// spread across the I/O, panic, and stall classes.
#[test]
fn seeded_soak_survives_hostile_faults_and_restores_steady_state() {
    let report = soak(&ChaosConfig::new(0xFA17_11FE)).expect("soak runs");
    assert!(report.passed(), "chaos invariants violated:\n{}", report.render());

    // Fault volume and class coverage: the acceptance floor is 500 injected
    // faults, and the run must have exercised short/interrupted I/O, at
    // least one injected worker panic, and at least one injected stall.
    assert!(report.faults.total() >= 500, "only {} faults fired", report.faults.total());
    assert!(report.faults.io_total() > 0, "no I/O faults fired:\n{}", report.render());
    assert!(
        report.faults.fired_at(FaultSite::WorkerPanic) > 0,
        "no injected panics:\n{}",
        report.render()
    );
    assert!(
        report.faults.fired_at(FaultSite::WorkerStall) > 0,
        "no injected stalls:\n{}",
        report.render()
    );

    // The fleet actually had to heal: overload shedding and retries are
    // part of the hostile schedule, not a theoretical path.
    assert!(report.answered_ok > 0, "{}", report.render());
    assert_eq!(report.mismatches, 0, "delivered replies diverged:\n{}", report.render());
    assert_eq!(report.submitted, report.completed, "unanswered submissions:\n{}", report.render());
    assert_eq!(report.queue_depth_after, 0, "queue not drained:\n{}", report.render());
    assert_eq!(report.workers_alive, report.workers_expected, "{}", report.render());
}

/// Same seed ⇒ same schedule: the report's hash matches a plan rebuilt
/// from scratch, and two rebuilds agree; a different seed disagrees.
#[test]
fn same_seed_reproduces_the_schedule_hash() {
    let report = soak(&ChaosConfig::new(42).with_requests(64)).expect("soak runs");
    let rebuilt = FaultPlan::hostile(42).schedule_hash();
    assert_eq!(report.schedule_hash, rebuilt, "seed 42 must rebuild its schedule");
    assert_eq!(FaultPlan::hostile(42).schedule_hash(), rebuilt, "rebuild must be stable");
    assert_ne!(FaultPlan::hostile(43).schedule_hash(), rebuilt, "different seed, same hash");
}

/// Arming the deliberately-unhandled `LostReply` class must make the soak
/// FAIL — this is the proof that the invariant gate detects real loss, not
/// just that fault-free runs pass.  Mirrors CI's must-fail step.
#[test]
fn unhandled_fault_class_is_caught_by_the_invariant_gate() {
    let report = soak(&ChaosConfig::new(7).with_requests(200).unhandled()).expect("soak runs");
    assert!(!report.passed(), "armed LostReply faults went undetected:\n{}", report.render());
    assert!(report.lost > 0 || report.submitted != report.completed, "{}", report.render());
}
