//! Chaos soak: the whole service stack under a seeded hostile fault plan.
//!
//! One run drives a multi-connection client fleet through a seeded request
//! book against a server whose I/O, queue clock, and workers are all being
//! actively sabotaged by [`FaultPlan`], then checks the self-healing
//! invariants: every accepted request is answered exactly once, every
//! delivered `ok` reply is bitwise-identical to the fault-free reference
//! run, and the service returns to steady state (queue drained, full worker
//! complement alive).  The same seed must reproduce the same fault
//! schedule, pinned by the schedule hash.

use american_option_pricing::core::batch::{ModelKind, PricingRequest};
use american_option_pricing::core::{OptionParams, OptionType};
use american_option_pricing::service::{
    soak, ChaosConfig, ChaosReport, EventKind, FaultPlan, FaultSite, QuoteService, RetryPolicy,
    ServiceConfig, ServiceRequest, TraceCard, FAULT_SITES, FLAG_ABANDONED, FLAG_ERROR,
};
use std::time::Duration;

/// The standard seeded soak must pass with a meaningful fault volume
/// spread across the I/O, panic, and stall classes.
#[test]
fn seeded_soak_survives_hostile_faults_and_restores_steady_state() {
    let report = soak(&ChaosConfig::new(0xFA17_11FE)).expect("soak runs");
    assert!(report.passed(), "chaos invariants violated:\n{}", report.render());

    // Fault volume and class coverage: the acceptance floor is 500 injected
    // faults, and the run must have exercised short/interrupted I/O, at
    // least one injected worker panic, and at least one injected stall.
    assert!(report.faults.total() >= 500, "only {} faults fired", report.faults.total());
    assert!(report.faults.io_total() > 0, "no I/O faults fired:\n{}", report.render());
    assert!(
        report.faults.fired_at(FaultSite::WorkerPanic) > 0,
        "no injected panics:\n{}",
        report.render()
    );
    assert!(
        report.faults.fired_at(FaultSite::WorkerStall) > 0,
        "no injected stalls:\n{}",
        report.render()
    );

    // The fleet actually had to heal: overload shedding and retries are
    // part of the hostile schedule, not a theoretical path.
    assert!(report.answered_ok > 0, "{}", report.render());
    assert_eq!(report.mismatches, 0, "delivered replies diverged:\n{}", report.render());
    assert_eq!(report.submitted, report.completed, "unanswered submissions:\n{}", report.render());
    assert_eq!(report.queue_depth_after, 0, "queue not drained:\n{}", report.render());
    assert_eq!(report.workers_alive, report.workers_expected, "{}", report.render());
}

/// Same seed ⇒ same schedule: the report's hash matches a plan rebuilt
/// from scratch, and two rebuilds agree; a different seed disagrees.
#[test]
fn same_seed_reproduces_the_schedule_hash() {
    let report = soak(&ChaosConfig::new(42).with_requests(64)).expect("soak runs");
    let rebuilt = FaultPlan::hostile(42).schedule_hash();
    assert_eq!(report.schedule_hash, rebuilt, "seed 42 must rebuild its schedule");
    assert_eq!(FaultPlan::hostile(42).schedule_hash(), rebuilt, "rebuild must be stable");
    assert_ne!(FaultPlan::hostile(43).schedule_hash(), rebuilt, "different seed, same hash");
}

/// Arming the deliberately-unhandled `LostReply` class must make the soak
/// FAIL — this is the proof that the invariant gate detects real loss, not
/// just that fault-free runs pass.  Mirrors CI's must-fail step.
#[test]
fn unhandled_fault_class_is_caught_by_the_invariant_gate() {
    let report = soak(&ChaosConfig::new(7).with_requests(200).unhandled()).expect("soak runs");
    assert!(!report.passed(), "armed LostReply faults went undetected:\n{}", report.render());
    assert!(report.lost > 0 || report.submitted != report.completed, "{}", report.render());
}

/// The event journal is a faithful flight recorder: every injected fault
/// appears exactly once with its (site, consultation index), every
/// shed/restart/deadline decision is journaled exactly as often as its
/// service counter, and every accepted request left exactly one trace
/// card — delivered with its reply, or journaled as abandoned when a
/// faulted connection died before the reactor could pump the reply.
/// `soak_config` sizes the ring so nothing can evict mid-run.
#[test]
fn journal_records_every_fault_and_decision_exactly_once() {
    let cfg = ChaosConfig { min_faults: 0, ..ChaosConfig::new(0x0B5E_11ED) }.with_requests(192);
    let report = soak(&cfg).expect("soak runs");
    assert!(report.passed(), "{}", report.render());
    assert!(report.faults.total() > 0, "no faults fired — nothing to audit");

    let count_of = |kind: EventKind| -> u64 {
        report.journal.iter().filter(|e| e.kind == kind).count() as u64
    };

    // Faults: per site, the journaled firings match the plan's fired
    // counter exactly — no drops, no duplicates — and every firing carries
    // a distinct consultation index.
    let mut fault_events = 0u64;
    for &site in FAULT_SITES.iter() {
        let mut indices: Vec<u64> = report
            .journal
            .iter()
            .filter(|e| e.kind == EventKind::Fault && e.payload[0] == site as u64)
            .map(|e| e.payload[1])
            .collect();
        fault_events += indices.len() as u64;
        assert_eq!(
            indices.len() as u64,
            report.faults.fired_at(site),
            "journal disagrees with the fired counter at {}",
            site.name(),
        );
        let n = indices.len();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), n, "duplicate journaled firing at {}", site.name());
    }
    // ...and no fault event names a site outside the catalogue.
    assert_eq!(fault_events, count_of(EventKind::Fault));
    assert_eq!(fault_events, report.faults.total());

    // Decisions: each journal kind tallies exactly with its counter.
    let stats = &report.service;
    assert_eq!(count_of(EventKind::Shed), stats.shed_by_class.total());
    assert_eq!(count_of(EventKind::Retry), stats.retries);
    assert_eq!(count_of(EventKind::WorkerRestart), stats.worker_restarts);
    assert_eq!(count_of(EventKind::DeadlineMiss), stats.deadline_misses);

    // Trace cards: one per executed request — whether the reply reached
    // its client or the connection died first (the ticket's drop journals
    // the card flagged abandoned).  Every card unpacks, and an abandoned
    // card always also carries the error flag.
    assert_eq!(count_of(EventKind::Trace), stats.completed);
    for event in report.journal.iter().filter(|e| e.kind == EventKind::Trace) {
        let card = TraceCard::from_event(event).expect("journaled trace event unpacks");
        if card.flags & FLAG_ABANDONED != 0 {
            assert!(card.flags & FLAG_ERROR != 0, "abandoned card without error flag: {card:?}");
        }
    }
}

/// Same seed ⇒ same journal, modulo timing: the fault decision sequence is
/// pure in `(seed, site, index)`, so at every site two same-seed soaks must
/// journal *identical* firing indices over their common consultation
/// prefix.  Only how far each run consults a site (and the timestamps) is
/// timing-dependent; a single disagreement means the journal or the plan
/// leaked nondeterminism.
#[test]
fn same_seed_soaks_journal_identical_fault_firings() {
    let cfg = ChaosConfig { min_faults: 0, ..ChaosConfig::new(5) }.with_requests(96);
    let a = soak(&cfg).expect("soak runs");
    let b = soak(&cfg).expect("soak runs");
    assert_eq!(a.schedule_hash, b.schedule_hash, "same seed must compile the same schedule");

    let fired = |r: &ChaosReport, site: FaultSite| -> Vec<u64> {
        let mut v: Vec<u64> = r
            .journal
            .iter()
            .filter(|e| e.kind == EventKind::Fault && e.payload[0] == site as u64)
            .map(|e| e.payload[1])
            .collect();
        v.sort_unstable();
        v
    };
    let mut compared = 0usize;
    for &site in FAULT_SITES.iter() {
        let (fa, fb) = (fired(&a, site), fired(&b, site));
        let common = fa.len().min(fb.len());
        compared += common;
        assert_eq!(
            &fa[..common],
            &fb[..common],
            "same-seed runs disagree on fault firings at {}",
            site.name(),
        );
    }
    assert!(compared > 0, "no common fault firings — the comparison was vacuous");
}

/// The in-process retry budget journals one `Retry` event per performed
/// retry, keyed `(client id, attempt)` — exactly once each, in step with
/// the `retries` counter.
#[test]
fn retry_decisions_are_journaled_exactly_once_with_their_attempt_index() {
    let service = QuoteService::start(ServiceConfig {
        workers: 1,
        max_batch: 1,
        max_wait: Duration::from_millis(1),
        per_conn_inflight: 1,
        retry_budget: 2,
        ..ServiceConfig::default()
    })
    .expect("start service");
    let client = service.client();

    // Plug the handle's single in-flight slot with a heavy quote: every
    // further call on it sheds Overloaded until the plug completes, so
    // call_with_retry burns its whole budget (2 retries) deterministically.
    let heavy = PricingRequest::american(
        ModelKind::Bopm,
        OptionType::Put,
        OptionParams::paper_defaults(),
        4000,
    );
    let plug = client
        .submit_with_deadline(ServiceRequest::Price(heavy), Some(Duration::ZERO))
        .expect("plug submit");
    let cheap = PricingRequest::american(
        ModelKind::Bopm,
        OptionType::Call,
        OptionParams::paper_defaults(),
        32,
    );
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
    };
    let got = client.call_with_retry(ServiceRequest::Price(cheap), &policy);
    assert!(got.is_err(), "the plugged slot must shed the retrying call: {got:?}");
    assert!(plug.wait().is_ok());

    let stats = service.stats();
    assert_eq!(stats.retries, 2, "budget 2 must allow exactly two retries");
    let retries: Vec<(u64, u64)> = service
        .journal()
        .snapshot()
        .iter()
        .filter(|e| e.kind == EventKind::Retry)
        .map(|e| (e.payload[0], e.payload[1]))
        .collect();
    assert_eq!(retries.len() as u64, stats.retries, "one journal event per performed retry");
    let mut attempts: Vec<u64> = retries.iter().map(|&(_, a)| a).collect();
    attempts.sort_unstable();
    assert_eq!(attempts, vec![1, 2], "attempt indices journaled exactly once each");
    assert!(
        retries.iter().all(|&(id, _)| id == retries[0].0),
        "all retries came from the one retrying client handle"
    );
    service.shutdown();
}
