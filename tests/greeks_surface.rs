//! Property tests for the derived-quantity batch layers: sharded memo
//! results are bitwise identical to the single-shard path, `greeks_by_fd`
//! is exactly the batch-of-one greeks, and the lockstep surface driver
//! agrees with the serial per-quote inversion.

use american_option_pricing::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = OptionParams> {
    (
        50.0..300.0f64, // spot
        50.0..300.0f64, // strike
        0.0..0.08f64,   // rate
        0.1..0.6f64,    // volatility
        0.0..0.08f64,   // dividend yield
        0.25..2.0f64,   // expiry
    )
        .prop_map(|(spot, strike, rate, volatility, dividend_yield, expiry)| OptionParams {
            spot,
            strike,
            rate,
            volatility,
            dividend_yield,
            expiry,
        })
}

fn arb_request() -> impl Strategy<Value = PricingRequest> {
    (arb_params(), 16usize..160, 0usize..3).prop_map(|(p, steps, kind)| match kind {
        0 => PricingRequest::american(ModelKind::Bopm, OptionType::Call, p, steps),
        1 => PricingRequest::european(ModelKind::Bopm, OptionType::Put, p, steps),
        _ => PricingRequest::american(
            ModelKind::Bsm,
            OptionType::Put,
            OptionParams { dividend_yield: 0.0, ..p },
            steps,
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard count is a pure performance knob: any book priced through a
    /// single-shard and a many-shard pricer — cold and re-quoted — must
    /// come back bitwise identical with matching aggregate counters.
    #[test]
    fn sharded_memo_is_bitwise_identical_to_single_shard(
        book in proptest::collection::vec(arb_request(), 1..6),
        shards in 2usize..16,
    ) {
        let single = BatchPricer::with_memo_config(EngineConfig::default(), 256, 1);
        let sharded = BatchPricer::with_memo_config(EngineConfig::default(), 256, shards);
        for pass in 0..2 {
            let a = single.price_batch(&book);
            let b = sharded.price_batch(&book);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                match (x, y) {
                    (Ok(x), Ok(y)) => prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "pass {pass} slot {i}: {x} vs {y}"
                    ),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "pass {pass} slot {i}: {other:?}"),
                }
            }
        }
        let (s, m) = (single.memo_stats(), sharded.memo_stats());
        prop_assert_eq!((s.hits, s.misses, s.entries), (m.hits, m.misses, m.entries));
    }

    /// `greeks_by_fd` is a batch-of-one facade: it must return exactly what
    /// `batch_greeks` returns for the same request inside a larger book.
    #[test]
    fn greeks_by_fd_equals_batch_greeks_on_a_batch_of_one(req in arb_request()) {
        let pricer = BatchPricer::new(EngineConfig::default());
        let one = greeks_by_fd(&pricer, &req);
        let batch = batch_greeks(&pricer, std::slice::from_ref(&req)).pop().unwrap();
        match (one, batch) {
            (Ok(a), Ok(b)) => {
                for (x, y) in [
                    (a.delta, b.delta),
                    (a.gamma, b.gamma),
                    (a.theta, b.theta),
                    (a.vega, b.vega),
                    (a.rho, b.rho),
                ] {
                    prop_assert!(x.to_bits() == y.to_bits(), "{a:?} vs {b:?}");
                }
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "{req:?}: {other:?}"),
        }
    }

    /// The serial per-contract entry point must agree bitwise with its own
    /// hand-rolled finite differences over the direct fast pricer — the
    /// pre-batch implementation, kept here as the oracle.
    #[test]
    fn facade_greeks_match_hand_rolled_serial_differences(
        params in arb_params(),
        steps in 32usize..200,
    ) {
        let cfg = EngineConfig::default();
        let got = match greeks::american_call_bopm(&params, steps, &cfg) {
            Ok(g) => g,
            // Unstable discretisations at a bumped parameter are legal; the
            // property only constrains successful results.
            Err(_) => return Ok(()),
        };
        let reprice = |p: OptionParams| {
            bopm_fast::price_american_call(&BopmModel::new(p, steps).unwrap(), &cfg)
        };
        let hs = params.spot * 1e-2;
        let up = reprice(OptionParams { spot: params.spot + hs, ..params });
        let mid = reprice(params);
        let dn = reprice(OptionParams { spot: params.spot - hs, ..params });
        let delta = (up - dn) / (2.0 * hs);
        let gamma = (up - 2.0 * mid + dn) / (hs * hs);
        prop_assert!(got.delta.to_bits() == delta.to_bits(), "{} vs {delta}", got.delta);
        prop_assert!(got.gamma.to_bits() == gamma.to_bits(), "{} vs {gamma}", got.gamma);
        let hv = params.volatility.max(0.05) * 1e-4;
        let v_up = reprice(OptionParams { volatility: params.volatility + hv, ..params });
        let v_dn = reprice(OptionParams { volatility: params.volatility - hv, ..params });
        let vega = (v_up - v_dn) / (2.0 * hv);
        prop_assert!(got.vega.to_bits() == vega.to_bits(), "{} vs {vega}", got.vega);
    }

    /// Lockstep surface inversion agrees with the serial bisection on every
    /// attainable quote.  Agreement is checked in *price* space: both paths
    /// accept a volatility only when its price residual is below the shared
    /// 1e-10 tolerance, and for low-vega quotes many vols satisfy that — the
    /// two drivers may legitimately return answers whose vol difference is
    /// ~tolerance/vega.  What is forbidden is either path returning a vol
    /// that does not reproduce the quote.
    #[test]
    fn surface_agrees_with_serial_inversion(
        params in arb_params(),
        true_vol in 0.12..0.5f64,
        steps in 48usize..160,
    ) {
        let cfg = EngineConfig::default();
        let quoted = OptionParams { volatility: true_vol, ..params };
        let market = match BopmModel::new(quoted, steps) {
            Ok(m) => bopm_fast::price_american_call(&m, &cfg),
            Err(_) => return Ok(()),
        };
        let serial = implied_vol::american_call_bopm(&params, steps, market, &cfg);
        let pricer = BatchPricer::new(cfg);
        let batch = implied_vol_surface(&pricer, &[VolQuote::new(params, steps, market)])
            .pop()
            .unwrap();
        match (serial, batch) {
            (Ok(s), Ok(b)) => {
                let reprice = |vol: f64| {
                    let p = OptionParams { volatility: vol, ..params };
                    bopm_fast::price_american_call(&BopmModel::new(p, steps).unwrap(), &cfg)
                };
                for (name, vol) in [("serial", s), ("surface", b)] {
                    let residual = (reprice(vol) - market).abs();
                    prop_assert!(
                        residual < 1e-10,
                        "{name} vol {vol} reprices with residual {residual:e}"
                    );
                }
                // Both sit on the same monotone branch: loose vol sanity.
                prop_assert!((s - b).abs() < 1e-2, "serial {s} vs surface {b}");
            }
            // Zero-vega/flat quotes may be rejected by both paths; what is
            // forbidden is exactly one path inventing an answer.
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Put-side surface coverage cross-checked through the exact discrete
    /// put–call symmetry of the CRR lattice: `P(S, K, R, Y) = C(K, S, Y, R)`.
    /// A put quote manufactured from a call price of the reflected contract
    /// must invert through the put surface to the same volatility the call
    /// surface recovers for the reflected quote.
    #[test]
    fn put_surface_agrees_with_the_reflected_call_surface(
        params in arb_params(),
        true_vol in 0.12..0.5f64,
        steps in 48usize..160,
    ) {
        let cfg = EngineConfig::default();
        let reflected = OptionParams {
            spot: params.strike,
            strike: params.spot,
            rate: params.dividend_yield,
            dividend_yield: params.rate,
            ..params
        };
        let quoted = OptionParams { volatility: true_vol, ..params };
        let market_put = match BopmModel::new(quoted, steps) {
            Ok(m) => bopm_fast::price_american_put(&m, &cfg),
            Err(_) => return Ok(()),
        };
        let market_call = {
            let m = BopmModel::new(OptionParams { volatility: true_vol, ..reflected }, steps)
                .unwrap();
            bopm_fast::price_american_call(&m, &cfg)
        };
        // The symmetry is exact on the lattice, so the two quotes are the
        // same number up to float rounding of the two engine paths.
        prop_assert!(
            (market_put - market_call).abs() <= 1e-9 * market_put.abs().max(1.0),
            "put {market_put} vs reflected call {market_call}"
        );
        let pricer = BatchPricer::new(cfg);
        let quotes = [
            VolQuote::put(params, steps, market_put),
            VolQuote::new(reflected, steps, market_call),
        ];
        let out = implied_vol_surface(&pricer, &quotes);
        match (&out[0], &out[1]) {
            (Ok(p_vol), Ok(c_vol)) => {
                // The hard contract: the recovered vol must reproduce the
                // quote to the shared 1e-10 tolerance.
                let reprice = |vol: f64| {
                    let p = OptionParams { volatility: vol, ..params };
                    bopm_fast::price_american_put(&BopmModel::new(p, steps).unwrap(), &cfg)
                };
                let residual = (reprice(*p_vol) - market_put).abs();
                prop_assert!(residual < 1e-10, "put vol {p_vol} residual {residual:e}");
                // Vol proximity is only meaningful when the quote responds
                // to volatility: deep-ITM immediate-exercise quotes are flat
                // (price = intrinsic over a wide vol band) and any vol in the
                // band is a legitimate answer on both sides.
                let h = 1e-3;
                let vega = (reprice(true_vol + h) - reprice(true_vol - h)) / (2.0 * h);
                if vega > 1e-3 {
                    prop_assert!((p_vol - c_vol).abs() < 1e-2, "put {p_vol} vs call {c_vol}");
                    prop_assert!(
                        (p_vol - true_vol).abs() < 1e-2,
                        "put {p_vol} vs true {true_vol}"
                    );
                }
            }
            // Flat-vega quotes may be rejected; the symmetry demands the
            // rejection happen on both sides together.
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
