//! Smoke test mirroring `examples/quickstart.rs` so the example's code path
//! is exercised by `cargo test` and cannot silently rot.  (The examples
//! themselves are compile-checked by `cargo check --examples` in CI; this
//! test runs the same calls at a debug-friendly lattice size.)

use american_option_pricing::prelude::*;

/// The exact sequence of calls `examples/quickstart.rs` makes, at a smaller
/// `steps` so it stays fast without optimisation.
#[test]
fn quickstart_code_path_agrees_across_pricers() {
    let params = OptionParams::paper_defaults();
    let steps = 2048;
    let model = BopmModel::new(params, steps).expect("valid lattice");
    let cfg = EngineConfig::default();

    let fast = bopm_fast::price_american_call(&model, &cfg);
    let naive = bopm_naive::price(
        &model,
        OptionType::Call,
        ExerciseStyle::American,
        bopm_naive::ExecMode::Parallel,
    );
    let european = analytic::black_scholes_price(&params, OptionType::Call).unwrap();

    assert!((fast - naive).abs() < 1e-8 * naive, "fft {fast} vs naive {naive}");
    // The American call dominates its European counterpart, and the lattice
    // price sits near the closed form (discretisation + early exercise).
    assert!(fast >= european - 1e-3, "american {fast} < european {european}");
    assert!((fast - european).abs() < 0.5, "lattice {fast} far from BS {european}");
}

/// The facade doctest's quick-start claim, kept honest at the exact size it
/// advertises: `paper_defaults()` at 1024 steps prices to 8.32 ± 0.05.
#[test]
fn quickstart_claimed_price_is_accurate() {
    let params = OptionParams::paper_defaults();
    let model = BopmModel::new(params, 1024).unwrap();
    let price = bopm_fast::price_american_call(&model, &EngineConfig::default());
    assert!(
        (price - 8.32).abs() < 0.05,
        "documented quick-start price drifted: got {price}, doc claims 8.32 ± 0.05"
    );
}
