//! Integration tests spanning the workspace crates: every implementation
//! family must agree on prices, and the models must agree with each other
//! and with closed forms in their overlap.

use american_option_pricing::core::bopm;
use american_option_pricing::prelude::*;

fn paper() -> OptionParams {
    OptionParams::paper_defaults()
}

#[test]
fn bopm_implementations_agree_at_multiple_sizes() {
    let cfg = EngineConfig::default();
    for steps in [64usize, 257, 1024, 4096] {
        let m = BopmModel::new(paper(), steps).unwrap();
        let fast = bopm_fast::price_american_call(&m, &cfg);
        let serial = bopm_naive::price(
            &m,
            OptionType::Call,
            ExerciseStyle::American,
            bopm_naive::ExecMode::Serial,
        );
        let parallel = bopm_naive::price(
            &m,
            OptionType::Call,
            ExerciseStyle::American,
            bopm_naive::ExecMode::Parallel,
        );
        let tiled = bopm::tiled::price(
            &m,
            OptionType::Call,
            ExerciseStyle::American,
            bopm::tiled::TileConfig::default(),
        );
        let oblivious = bopm::oblivious::price(&m, OptionType::Call, ExerciseStyle::American);
        for (name, v) in
            [("fast", fast), ("parallel", parallel), ("tiled", tiled), ("oblivious", oblivious)]
        {
            assert!(
                (v - serial).abs() < 1e-9 * serial,
                "steps={steps} {name}: {v} vs serial {serial}"
            );
        }
    }
}

#[test]
fn binomial_and_trinomial_agree_on_the_continuous_limit() {
    let cfg = EngineConfig::default();
    let steps = 4096;
    let bin = BopmModel::new(paper(), steps).unwrap();
    let tri = TopmModel::new(paper(), steps).unwrap();
    let v_bin = bopm_fast::price_american_call(&bin, &cfg);
    let v_tri = topm_fast::price_american_call(&tri, &cfg);
    assert!((v_bin - v_tri).abs() < 2e-3 * v_bin, "binomial {v_bin} vs trinomial {v_tri}");
}

#[test]
fn american_put_consistent_across_bsm_fd_and_lattice() {
    let cfg = EngineConfig::default();
    let p = OptionParams { dividend_yield: 0.0, rate: 0.05, ..paper() };
    let steps = 4096;
    let fd = BsmModel::new(p, steps).unwrap();
    let v_fd = bsm_fast::price_american_put(&fd, &cfg);
    let lat = BopmModel::new(p, steps).unwrap();
    let v_lat = bopm_fast::price_american_put(&lat, &cfg);
    assert!((v_fd - v_lat).abs() < 5e-3 * v_lat, "fd {v_fd} vs lattice {v_lat}");
}

#[test]
fn european_limits_match_black_scholes_within_discretisation_error() {
    let bs_call = analytic::black_scholes_price(&paper(), OptionType::Call).unwrap();
    let m = BopmModel::new(paper(), 32_768).unwrap();
    let v = american_option_pricing::core::bopm::european::price_european_fft(&m, OptionType::Call);
    assert!((v - bs_call).abs() < 1e-3, "lattice {v} vs closed form {bs_call}");
}

#[test]
fn perpetual_put_bounds_long_dated_american_put() {
    // As expiry grows, the American put value approaches (from below) the
    // perpetual closed form of McKean.
    let p = OptionParams { dividend_yield: 0.0, rate: 0.05, expiry: 25.0, ..paper() };
    let perpetual = analytic::perpetual_put(p.spot, p.strike, p.rate, p.volatility).unwrap();
    let m = BsmModel::new(p, 8192).unwrap();
    let long_dated = bsm_fast::price_american_put(&m, &EngineConfig::default());
    assert!(long_dated <= perpetual * 1.005, "{long_dated} vs perpetual {perpetual}");
    assert!(long_dated > perpetual * 0.9, "{long_dated} vs perpetual {perpetual}");
}

#[test]
fn price_is_monotone_in_contract_parameters() {
    let cfg = EngineConfig::default();
    let steps = 1024;
    let price =
        |p: OptionParams| bopm_fast::price_american_call(&BopmModel::new(p, steps).unwrap(), &cfg);
    let base = paper();
    // Call value rises with spot and vol, falls with strike.
    assert!(price(OptionParams { spot: 140.0, ..base }) > price(base));
    assert!(price(OptionParams { volatility: 0.4, ..base }) > price(base));
    assert!(price(OptionParams { strike: 150.0, ..base }) < price(base));
    // American with more time is worth at least as much.
    assert!(price(OptionParams { expiry: 2.0, ..base }) >= price(base) - 1e-12);
}

#[test]
fn engine_base_cutoff_is_a_pure_performance_knob() {
    let m = BopmModel::new(paper(), 2000).unwrap();
    let reference = bopm_fast::price_american_call(&m, &EngineConfig::default());
    for cutoff in [1u64, 3, 16, 64, 256] {
        let cfg = EngineConfig { base_cutoff: cutoff, ..EngineConfig::default() };
        let v = bopm_fast::price_american_call(&m, &cfg);
        assert!((v - reference).abs() < 1e-9 * reference, "cutoff={cutoff}");
    }
}

#[test]
fn greeks_and_implied_vol_roundtrip_through_the_fast_pricer() {
    let cfg = EngineConfig::default();
    let p = paper();
    let g = greeks::american_call_bopm(&p, 1024, &cfg).unwrap();
    assert!(g.delta > 0.0 && g.delta < 1.0 && g.vega > 0.0);
    let m = BopmModel::new(p, 1024).unwrap();
    let quote = bopm_fast::price_american_call(&m, &cfg);
    let vol = implied_vol::american_call_bopm(&p, 1024, quote, &cfg).unwrap();
    assert!((vol - p.volatility).abs() < 1e-6, "recovered vol {vol}");
}
