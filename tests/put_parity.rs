//! Property tests for the fast American puts (left-cone engine): naive-loop
//! equivalence across a randomized parameter grid, the discrete put–call
//! symmetry, boundary monotonicity, and batch-of-one bitwise identity.

use american_option_pricing::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = OptionParams> {
    (
        10.0..500.0f64, // spot
        10.0..500.0f64, // strike
        0.0..0.10f64,   // rate
        0.05..0.8f64,   // volatility
        0.0..0.10f64,   // dividend yield
        0.1..3.0f64,    // expiry
    )
        .prop_map(|(spot, strike, rate, volatility, dividend_yield, expiry)| OptionParams {
            spot,
            strike,
            rate,
            volatility,
            dividend_yield,
            expiry,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bopm_fast_put_matches_naive_on_random_params(p in arb_params(), steps in 16usize..600) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        let m = BopmModel::new(p, steps).unwrap();
        let fast = bopm_fast::price_american_put(&m, &EngineConfig::default());
        let naive = bopm_naive::price(
            &m, OptionType::Put, ExerciseStyle::American, bopm_naive::ExecMode::Serial);
        prop_assert!(
            (fast - naive).abs() < 1e-8 * naive.abs().max(1.0) + 1e-12 * p.strike,
            "fast {} vs naive {}", fast, naive
        );
    }

    #[test]
    fn topm_fast_put_matches_naive_on_random_params(p in arb_params(), steps in 16usize..400) {
        prop_assume!(TopmModel::new(p, steps).is_ok());
        let m = TopmModel::new(p, steps).unwrap();
        let fast = topm_fast::price_american_put(&m, &EngineConfig::default());
        let naive = topm_naive::price(
            &m, OptionType::Put, ExerciseStyle::American, topm_naive::ExecMode::Serial);
        prop_assert!(
            (fast - naive).abs() < 1e-8 * naive.abs().max(1.0) + 1e-12 * p.strike,
            "fast {} vs naive {}", fast, naive
        );
    }

    #[test]
    fn bopm_put_call_symmetry_holds(p in arb_params(), steps in 16usize..500) {
        // McDonald–Schroder discrete symmetry, exact on CRR lattices
        // (u·d = 1): P(S, K, R, Y) = C(K, S, Y, R).  The put prices through
        // the left-cone engine, the call through the right-cone engine —
        // two independent code paths agreeing through a nontrivial identity.
        let mirrored = OptionParams {
            spot: p.strike,
            strike: p.spot,
            rate: p.dividend_yield,
            dividend_yield: p.rate,
            ..p
        };
        prop_assume!(BopmModel::new(p, steps).is_ok());
        // |R−Y| and V·√Δt are symmetric, so the mirror is stable too.
        let put_m = BopmModel::new(p, steps).unwrap();
        let call_m = BopmModel::new(mirrored, steps).unwrap();
        let cfg = EngineConfig::default();
        let put = bopm_fast::price_american_put(&put_m, &cfg);
        let call = bopm_fast::price_american_call(&call_m, &cfg);
        prop_assert!(
            (put - call).abs() < 1e-8 * call.abs().max(1.0) + 1e-11 * p.strike.max(p.spot),
            "put {} vs mirrored call {}", put, call
        );
    }

    #[test]
    fn bopm_put_boundary_is_monotone(p in arb_params(), steps in 64usize..400) {
        prop_assume!(BopmModel::new(p, steps).is_ok());
        prop_assume!(p.rate > 1e-4); // zero-rate puts have no frontier
        let m = BopmModel::new(p, steps).unwrap();
        let pts = exercise_boundary::bopm_put_boundary(&m, &EngineConfig::default(), 12);
        // Expiry-first samples: the critical price never increases as
        // time-to-expiry grows — up to the lattice quantisation (the
        // discrete frontier tracks S*(τ) only to within a factor u²) — and
        // stays at or below the strike exactly.
        let prices: Vec<f64> = pts.iter().filter_map(|q| q.critical_price).collect();
        let slack = m.up().powi(2) * (1.0 + 1e-9);
        for w in prices.windows(2) {
            prop_assert!(w[1] <= w[0] * slack, "frontier not monotone: {:?}", w);
        }
        for &x in &prices {
            prop_assert!(x <= p.strike * (1.0 + 1e-12), "critical {} above strike", x);
        }
    }

    #[test]
    fn batch_of_one_put_is_bitwise_identical_to_the_direct_pricer(
        p in arb_params(),
        steps in 16usize..300,
        family in 0usize..2,
    ) {
        let cfg = EngineConfig::default();
        let (req, want) = if family == 1 {
            prop_assume!(TopmModel::new(p, steps).is_ok());
            let m = TopmModel::new(p, steps).unwrap();
            (
                PricingRequest::american(ModelKind::Topm, OptionType::Put, p, steps),
                topm_fast::price_american_put(&m, &cfg),
            )
        } else {
            prop_assume!(BopmModel::new(p, steps).is_ok());
            let m = BopmModel::new(p, steps).unwrap();
            (
                PricingRequest::american(ModelKind::Bopm, OptionType::Put, p, steps),
                bopm_fast::price_american_put(&m, &cfg),
            )
        };
        let pricer = BatchPricer::new(cfg);
        let got = pricer.price_one(&req).unwrap();
        prop_assert!(got.to_bits() == want.to_bits(), "batch {} vs direct {}", got, want);
    }
}

/// The engine-vs-engine symmetry at a size where the trapezoid recursion is
/// deep on both sides (non-property, one deterministic heavyweight case).
#[test]
fn put_call_symmetry_at_depth() {
    let p = OptionParams::paper_defaults();
    let mirrored = OptionParams {
        spot: p.strike,
        strike: p.spot,
        rate: p.dividend_yield,
        dividend_yield: p.rate,
        ..p
    };
    let cfg = EngineConfig::default();
    let put = bopm_fast::price_american_put(&BopmModel::new(p, 8192).unwrap(), &cfg);
    let call = bopm_fast::price_american_call(&BopmModel::new(mirrored, 8192).unwrap(), &cfg);
    assert!((put - call).abs() < 1e-8 * call.max(1.0), "put {put} vs mirrored call {call}");
}

/// The batch layer routes American puts through the fast engines — assert
/// the route is genuinely the left-cone pricer, not the Θ(T²) loop nest,
/// by checking bitwise identity against the fast path (which differs from
/// the naive path in the last few ulps).
#[test]
fn batch_put_route_is_the_fast_engine() {
    let p = OptionParams::paper_defaults();
    let steps = 300;
    let pricer = BatchPricer::new(EngineConfig::default());
    let got = pricer
        .price_one(&PricingRequest::american(ModelKind::Bopm, OptionType::Put, p, steps))
        .unwrap();
    let fast =
        bopm_fast::price_american_put(&BopmModel::new(p, steps).unwrap(), &EngineConfig::default());
    assert_eq!(got.to_bits(), fast.to_bits());
    // Keep the naive nest as the numerical oracle for the same contract.
    let naive = bopm_naive::price(
        &BopmModel::new(p, steps).unwrap(),
        OptionType::Put,
        ExerciseStyle::American,
        bopm_naive::ExecMode::Serial,
    );
    assert!((got - naive).abs() < 1e-9 * naive.max(1.0), "batch {got} vs naive {naive}");
}
